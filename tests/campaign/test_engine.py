"""Campaign engine: caching, parallel execution, passivity, verify."""

import pytest

from repro.campaign import CampaignManifest, ResultStore
from repro.campaign.keys import SCHEMA_VERSION
from repro.campaign.store import record_to_dict
from repro.campaign.workloads import build_workload
from repro.core import CharacterizationRunner
from repro.core.design import DesignPoint
from repro.core.factors import FOCAL_POINT
from repro.instrument import FORCE_EVALUATIONS

from .conftest import TINY_CONFIG, tiny_engine, tiny_points


class TestColdAndWarm:
    def test_cold_run_executes_every_point(self, store_root):
        result = tiny_engine(store_root).run(tiny_points())
        assert result.ok
        assert [p.status for p in result.manifest.points] == ["ran", "ran"]
        assert all(r is not None for r in result.records)
        assert [r.n_ranks for r in result.records] == [1, 2]

    def test_warm_run_is_all_hits_and_does_zero_md_work(self, store_root):
        tiny_engine(store_root).run(tiny_points())

        warm = tiny_engine(store_root)
        before = FORCE_EVALUATIONS.snapshot()
        result = warm.run(tiny_points())
        assert FORCE_EVALUATIONS.delta(before) == 0
        assert result.ok
        assert [p.status for p in result.manifest.points] == ["hit", "hit"]

    def test_warm_records_equal_cold_records(self, store_root):
        cold = tiny_engine(store_root).run(tiny_points())
        warm = tiny_engine(store_root).run(tiny_points())
        for a, b in zip(cold.records, warm.records):
            assert record_to_dict(a) == record_to_dict(b)

    def test_duplicate_input_points_share_one_execution(self, store_root):
        point = tiny_points(ranks=(1,))[0]
        result = tiny_engine(store_root).run([point, point])
        assert result.ok
        assert record_to_dict(result.records[0]) == record_to_dict(result.records[1])
        statuses = sorted(p.status for p in result.manifest.points)
        assert statuses == ["hit", "ran"]


class TestPassivity:
    def test_engine_records_bit_identical_to_direct_runner(self, store_root):
        """Exact passivity: going through the engine (store, manifest,
        scheduling) changes nothing about the record itself."""
        system, positions = build_workload("peptide-tiny")
        runner = CharacterizationRunner(
            system=system, positions=positions, config=TINY_CONFIG
        )
        direct = runner.measure(tiny_points())

        engine = tiny_engine(store_root)
        via_engine = engine.run(tiny_points()).records
        for a, b in zip(direct, via_engine):
            assert record_to_dict(a) == record_to_dict(b)

    def test_pool_records_bit_identical_to_inline(self, store_root):
        inline = tiny_engine(store_root).run(tiny_points()).records

        pooled_engine = tiny_engine(None, n_workers=2)
        pooled = pooled_engine.run(tiny_points())
        assert pooled.ok
        assert {p.status for p in pooled.manifest.points} == {"ran"}
        for a, b in zip(inline, pooled.records):
            assert record_to_dict(a) == record_to_dict(b)


class TestFailureHandling:
    def test_impossible_point_marked_failed_after_retries(self, store_root):
        # 32 uni-CPU ranks need 32 nodes; the CoPs cluster has 16
        bad = DesignPoint(config=FOCAL_POINT, n_ranks=32)
        engine = tiny_engine(store_root, retries=1)
        result = engine.run(tiny_points(ranks=(1,)) + [bad])
        assert not result.ok
        statuses = [p.status for p in result.manifest.points]
        assert statuses == ["ran", "failed"]
        failed = result.manifest.points[1]
        assert failed.attempts == 2  # first try + one retry
        assert "nodes" in failed.error
        assert result.records[1] is None

    def test_timeout_kills_and_marks_the_point(self, store_root):
        slow = tiny_engine(
            store_root,
            config=type(TINY_CONFIG)(n_steps=3000, dt=0.0004),
            n_workers=1,
            timeout=0.2,
            retries=0,
        )
        result = slow.run(tiny_points(ranks=(2,)))
        assert not result.ok
        (status,) = result.manifest.points
        assert status.status == "timeout"
        assert "timed out" in status.error

    def test_unknown_workload_raises(self, store_root):
        engine = tiny_engine(store_root, workload="no-such-system")
        with pytest.raises(ValueError, match="unknown workload"):
            engine.run(tiny_points())


class TestManifest:
    def test_manifest_written_and_readable(self, store_root):
        engine = tiny_engine(store_root)
        result = engine.run(tiny_points())
        path = store_root / "manifests" / f"{result.manifest.campaign_id}.json"
        assert path.exists()
        read_back = CampaignManifest.read(path)
        assert read_back.campaign_id == result.manifest.campaign_id
        assert read_back.workload == "peptide-tiny"
        assert read_back.schema == SCHEMA_VERSION
        assert [p.status for p in read_back.points] == ["ran", "ran"]
        assert read_back.counts["ran"] == 2
        assert "2/2" in read_back.summary_line()

    def test_campaign_id_is_deterministic(self, store_root):
        a = tiny_engine(store_root).run(tiny_points())
        b = tiny_engine(store_root).run(tiny_points())
        assert a.manifest.campaign_id == b.manifest.campaign_id


class TestVerify:
    def test_intact_store_verifies_clean(self, store_root):
        engine = tiny_engine(store_root)
        engine.run(tiny_points())
        assert engine.verify(sample=2) == []

    def test_reopened_store_verifies_clean(self, store_root):
        tiny_engine(store_root).run(tiny_points())
        assert tiny_engine(store_root).verify(sample=2) == []

    def test_parallel_verify_clean(self, store_root):
        """Satellite: ``verify`` can fan the re-runs out over workers."""
        engine = tiny_engine(store_root)
        engine.run(tiny_points())
        assert engine.verify(sample=2, n_workers=2) == []

    def test_parallel_verify_detects_tampering(self, store_root):
        engine = tiny_engine(store_root)
        result = engine.run(tiny_points(ranks=(2,)))
        key = engine.key_for(tiny_points(ranks=(2,))[0])
        record = result.records[0]
        tampered = type(record)(
            **{**record_to_dict(record), "wall_time": record.wall_time * 1.5}
        )
        engine.store.put(key, tampered)
        mismatches = engine.verify(sample=2, n_workers=2)
        assert {m["field"] for m in mismatches} == {"wall_time"}

    def test_tampered_record_detected(self, store_root):
        engine = tiny_engine(store_root)
        result = engine.run(tiny_points(ranks=(2,)))
        key = engine.key_for(tiny_points(ranks=(2,))[0])
        record = result.records[0]
        tampered = type(record)(
            **{**record_to_dict(record), "wall_time": record.wall_time * 1.5}
        )
        engine.store.put(key, tampered)
        mismatches = engine.verify(sample=2)
        assert mismatches
        assert {m["field"] for m in mismatches} == {"wall_time"}
        assert mismatches[0]["key"] == key


class TestRunnerSharing:
    def test_two_runners_share_work_in_process(self):
        """Satellite: the store replaced the runner's private memo — a
        second runner over the same workload performs zero MD work."""
        from repro.core import runner as runner_mod

        store = ResultStore(None)
        system, positions = build_workload("peptide-tiny")
        first = CharacterizationRunner(
            system=system, positions=positions, config=TINY_CONFIG, store=store
        )
        first.measure(tiny_points())

        runner_mod._RUN_MEMO.clear()  # leave only the store to answer
        second = CharacterizationRunner(
            system=system, positions=positions, config=TINY_CONFIG, store=store
        )
        before = FORCE_EVALUATIONS.snapshot()
        records = second.measure(tiny_points())
        assert FORCE_EVALUATIONS.delta(before) == 0
        assert len(records) == 2

    def test_runner_and_engine_share_one_persistent_store(self, store_root):
        tiny_engine(store_root).run(tiny_points())

        system, positions = build_workload("peptide-tiny")
        runner = CharacterizationRunner(
            system=system,
            positions=positions,
            config=TINY_CONFIG,
            store=ResultStore(store_root),
        )
        before = FORCE_EVALUATIONS.snapshot()
        runner.measure(tiny_points())
        assert FORCE_EVALUATIONS.delta(before) == 0
