"""Cache-key canonicalization: stable across processes, sensitive to inputs."""

import subprocess
import sys

from repro.campaign.keys import (
    cache_key,
    point_seed,
    workload_fingerprint,
)
from repro.campaign.workloads import build_workload
from repro.core.design import DesignPoint
from repro.core.factors import FOCAL_POINT
from repro.parallel import MDRunConfig
from repro.parallel.costmodel import PIII_1GHZ

POINT = DesignPoint(config=FOCAL_POINT, n_ranks=4)
CONFIG = MDRunConfig(n_steps=2, dt=0.0004)

_CHILD = """
import sys
from repro.campaign.keys import cache_key, point_seed, workload_fingerprint
from repro.campaign.workloads import build_workload
from repro.core.design import DesignPoint
from repro.core.factors import FOCAL_POINT
from repro.parallel import MDRunConfig
from repro.parallel.costmodel import PIII_1GHZ

system, positions = build_workload("peptide-tiny")
fp = workload_fingerprint(system, positions)
point = DesignPoint(config=FOCAL_POINT, n_ranks=4)
key = cache_key(fp, point, MDRunConfig(n_steps=2, dt=0.0004), PIII_1GHZ, 2002)
print(fp)
print(key)
print(point_seed(2002, point))
"""


def _key_here():
    system, positions = build_workload("peptide-tiny")
    fp = workload_fingerprint(system, positions)
    return fp, cache_key(fp, POINT, CONFIG, PIII_1GHZ, 2002)


class TestCrossProcessStability:
    def test_key_identical_in_a_fresh_process(self):
        """The whole point of content addressing: another process (with a
        different PYTHONHASHSEED) computes the very same address."""
        fp, key = _key_here()
        out = subprocess.run(
            [sys.executable, "-c", _CHILD],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
            timeout=120,
        )
        assert out.returncode == 0, out.stderr
        child_fp, child_key, child_seed = out.stdout.split()
        assert child_fp == fp
        assert child_key == key
        assert int(child_seed) == point_seed(2002, POINT)


class TestKeySensitivity:
    def test_same_inputs_same_key(self):
        assert _key_here()[1] == _key_here()[1]

    def test_every_point_coordinate_changes_the_key(self):
        fp, base = _key_here()
        variants = [
            DesignPoint(config=FOCAL_POINT, n_ranks=8),
            DesignPoint(config=FOCAL_POINT, n_ranks=4, replicate=1),
            DesignPoint(config=FOCAL_POINT.with_level("network", "myrinet"), n_ranks=4),
            DesignPoint(config=FOCAL_POINT.with_level("middleware", "cmpi"), n_ranks=4),
            DesignPoint(config=FOCAL_POINT.with_level("cpus_per_node", 2), n_ranks=4),
        ]
        keys = {cache_key(fp, v, CONFIG, PIII_1GHZ, 2002) for v in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_config_and_seed_change_the_key(self):
        fp, base = _key_here()
        assert cache_key(fp, POINT, MDRunConfig(n_steps=4, dt=0.0004), PIII_1GHZ, 2002) != base
        assert cache_key(fp, POINT, CONFIG, PIII_1GHZ, 2003) != base

    def test_workload_fingerprint_sees_the_coordinates(self):
        system, positions = build_workload("peptide-tiny")
        a = workload_fingerprint(system, positions)
        moved = positions.copy()
        moved[0, 0] += 1e-9
        assert workload_fingerprint(system, moved) != a

    def test_point_seed_matches_runner_seed(self, peptide_system):
        """The engine and the runner must derive identical platform seeds
        (bit-identical records depend on it)."""
        from repro.core import CharacterizationRunner

        system, pos = peptide_system
        runner = CharacterizationRunner(system=system, positions=pos, config=CONFIG)
        assert runner._point_seed(POINT) == point_seed(2002, POINT)
