"""Store federation: export/import/merge semantics and multi-host audits."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    ResultStore,
    StoreConflictError,
    merge_into_store,
    record_digest,
    verify_stores_match,
)
from repro.campaign.store import record_to_dict

from .conftest import tiny_engine, tiny_points


def _run_into(store_root, points, **kw):
    engine = tiny_engine(store_root, **kw)
    engine.run(points)
    return engine


def _store_bytes(root) -> dict:
    return {f.name: f.read_bytes() for f in sorted(root.glob("*.jsonl"))}


class TestExportImport:
    def test_export_then_import_reproduces_the_store(self, tmp_path):
        _run_into(tmp_path / "a", tiny_points())
        src = ResultStore(tmp_path / "a")
        shard = tmp_path / "snapshot.jsonl"
        assert src.export_shard(shard) == 2

        dest = ResultStore(tmp_path / "b")
        stats = dest.import_shard(shard)
        assert stats == {
            "imported": 2, "duplicates": 0, "conflicts": 0,
            "corrupt": 0, "stale_schema": 0,
        }
        assert verify_stores_match(src, dest) == []

    def test_importing_the_same_shard_twice_is_a_bitwise_noop(self, tmp_path):
        _run_into(tmp_path / "a", tiny_points())
        shard = tmp_path / "snapshot.jsonl"
        ResultStore(tmp_path / "a").export_shard(shard)

        dest = ResultStore(tmp_path / "b")
        dest.import_shard(shard)
        dest.close()
        before = _store_bytes(tmp_path / "b")

        reopened = ResultStore(tmp_path / "b")
        stats = reopened.import_shard(shard)
        reopened.close()
        assert stats["imported"] == 0
        assert stats["duplicates"] == 2
        # idempotence is literal: not one byte of the store changed
        assert _store_bytes(tmp_path / "b") == before

    def test_truncated_shard_imports_its_readable_prefix(self, tmp_path):
        _run_into(tmp_path / "a", tiny_points())
        shard = tmp_path / "snapshot.jsonl"
        ResultStore(tmp_path / "a").export_shard(shard)
        lines = shard.read_text().splitlines()
        # a crashed writer: whole first line, then a torn second line
        shard.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        dest = ResultStore(tmp_path / "b")
        with pytest.warns(UserWarning, match="corrupt store line skipped"):
            stats = dest.import_shard(shard)
        assert stats["imported"] == 1
        assert stats["corrupt"] == 1
        assert len(dest) == 1

    def test_garbage_lines_are_skipped_not_fatal(self, tmp_path):
        _run_into(tmp_path / "a", tiny_points(ranks=(1,)))
        shard = tmp_path / "snapshot.jsonl"
        ResultStore(tmp_path / "a").export_shard(shard)
        shard.write_text("not json at all\n" + shard.read_text() + "{\"key\": 1}\n")

        dest = ResultStore(tmp_path / "b")
        with pytest.warns(UserWarning):
            stats = dest.import_shard(shard)
        assert stats["imported"] == 1
        assert stats["corrupt"] == 2

    def test_key_collision_with_different_record_raises(self, tmp_path):
        _run_into(tmp_path / "a", tiny_points())
        shard = tmp_path / "snapshot.jsonl"
        ResultStore(tmp_path / "a").export_shard(shard)
        docs = [json.loads(line) for line in shard.read_text().splitlines()]
        docs[0]["record"]["wall_time"] = docs[0]["record"]["wall_time"] + 1.0
        shard.write_text("\n".join(json.dumps(d) for d in docs) + "\n")

        dest = ResultStore(tmp_path / "b")
        dest.merge(ResultStore(tmp_path / "a"))  # the honest copies first
        with pytest.raises(StoreConflictError, match="different record"):
            dest.import_shard(shard)
        # nothing from the conflicting entry leaked in
        assert record_to_dict(dest.get(docs[0]["key"])) != docs[0]["record"]

    def test_conflicting_meta_alone_is_a_duplicate_not_a_conflict(self, tmp_path):
        # two hosts legitimately produce different provenance metadata for
        # the same deterministic record; that must merge cleanly
        _run_into(tmp_path / "a", tiny_points(ranks=(1,)))
        src = ResultStore(tmp_path / "a")
        entry = next(src.entries())
        dest = ResultStore(tmp_path / "b")
        dest.put(entry.key, entry.record, {"host": "elsewhere", "label": "same point"})
        stats = dest.merge(src)
        assert stats == {"imported": 0, "duplicates": 1, "conflicts": 0}


class TestTwoHostCampaign:
    def test_split_campaign_merges_bit_identical_to_single_host(self, tmp_path):
        """The acceptance scenario: two 'hosts' split a factorial design.

        Each half runs in its own store; merging both halves yields a
        store with the same keys and the same record hashes as one host
        running the whole design, and a second merge changes nothing.
        """
        points = tiny_points(ranks=(1, 2, 4))
        _run_into(tmp_path / "host-a", points[:2])
        _run_into(tmp_path / "host-b", points[2:])
        _run_into(tmp_path / "single", points)

        merged = ResultStore(tmp_path / "merged")
        stats = merge_into_store(
            merged, [tmp_path / "host-a", tmp_path / "host-b"]
        )
        assert stats["imported"] == 3
        assert stats["entries"] == 3

        single = ResultStore(tmp_path / "single")
        assert verify_stores_match(merged, single) == []
        for entry in single.entries():
            assert record_digest(merged.entry(entry.key).record) == record_digest(
                entry.record
            )

        merged.close()
        before = _store_bytes(tmp_path / "merged")
        again = merge_into_store(
            ResultStore(tmp_path / "merged"), [tmp_path / "host-a", tmp_path / "host-b"]
        )
        assert again["imported"] == 0
        assert again["duplicates"] == 3
        assert _store_bytes(tmp_path / "merged") == before

    def test_merge_manifest_records_which_host_ran_which_point(self, tmp_path):
        points = tiny_points(ranks=(1, 2))
        _run_into(tmp_path / "host-a", points[:1])
        _run_into(tmp_path / "host-b", points[1:])
        # forge distinct host provenance (both "hosts" are this machine)
        for name in ("host-a", "host-b"):
            store = ResultStore(tmp_path / name)
            for entry in list(store.entries()):
                entry.meta["host"] = name
                store.put(entry.key, entry.record, entry.meta)

        merged = ResultStore(tmp_path / "merged")
        stats = merge_into_store(merged, [tmp_path / "host-a", tmp_path / "host-b"])
        manifest = stats["manifest"]
        hosts = {p.label: p.host for p in manifest.points}
        assert set(hosts.values()) == {"host-a", "host-b"}
        assert len(manifest.points) == 2
        # and the manifest landed on disk, loadable, with provenance intact
        path = tmp_path / "merged" / "manifests" / f"{manifest.campaign_id}.json"
        assert path.exists()
        from repro.campaign import CampaignManifest

        reread = CampaignManifest.read(path)
        assert {p.label: p.host for p in reread.points} == hosts

    def test_crashed_workers_partial_shard_merges_cleanly(self, tmp_path):
        """A worker killed mid-write leaves a torn tail; merge survives it."""
        points = tiny_points(ranks=(1, 2))
        _run_into(tmp_path / "host-a", points)
        # simulate the crash: chop the live shard mid-line
        (shard,) = sorted((tmp_path / "host-a").glob("shard-*.jsonl"))
        raw = shard.read_bytes()
        shard.write_bytes(raw[: len(raw) - len(raw.splitlines(True)[-1]) // 2])

        merged = ResultStore(tmp_path / "merged")
        with pytest.warns(UserWarning, match="corrupt store line skipped"):
            stats = merge_into_store(merged, [tmp_path / "host-a"])
        assert stats["imported"] == 1  # the intact record survived
        assert len(merged) == 1


class TestVerifyAcrossHosts:
    def test_engine_verify_audits_merged_foreign_records(self, tmp_path):
        """``campaign verify`` on a merged store re-runs any host's points."""
        points = tiny_points(ranks=(1, 2))
        _run_into(tmp_path / "host-a", points)
        merged_root = tmp_path / "merged"
        merge_into_store(ResultStore(merged_root), [tmp_path / "host-a"])

        auditor = tiny_engine(merged_root)
        assert auditor.verify(sample=2) == []

    def test_verify_stores_match_reports_all_discrepancy_kinds(self, tmp_path):
        points = tiny_points(ranks=(1, 2))
        _run_into(tmp_path / "a", points)
        _run_into(tmp_path / "b", points[:1])
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        problems = verify_stores_match(a, b)
        assert len(problems) == 1
        assert "only in first store" in problems[0]
