"""Worker-pull lease board: claim/heartbeat/expiry and failure semantics.

Expiry is driven by an injected fake clock, so every timing scenario —
a worker dying mid-lease, a lease reclaimed and re-executed, a late
completion racing a reclaim — runs deterministically with zero sleeps.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    LeaseBoard,
    LeaseBoardError,
    ResultStore,
    merge_into_store,
    publish_campaign,
    verify_stores_match,
    work_campaign,
)
from repro.campaign.leases import Lease
from repro.instrument.counters import FORCE_EVALUATIONS

from .conftest import tiny_engine, tiny_points


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


def _publish(tmp_path, clock, ranks=(1, 2), store_root=None):
    engine = tiny_engine(store_root)
    points = tiny_points(ranks=ranks)
    leases = tmp_path / "leases.json"
    summary = publish_campaign(engine, points, leases, now=clock)
    return engine, points, leases, summary


class TestBoardProtocol:
    def test_publish_then_claim_hands_out_each_point_once(self, tmp_path, clock):
        _, points, leases, summary = _publish(tmp_path, clock)
        assert summary == {
            "leases": 2, "pending": 2, "done": 0,
            "campaign_id": summary["campaign_id"],
        }
        board = LeaseBoard(leases, now=clock)
        first = board.claim("w1", ttl=60)
        second = board.claim("w2", ttl=60)
        assert first is not None and second is not None
        assert first.key != second.key
        assert board.claim("w3", ttl=60) is None  # board exhausted
        assert board.counts() == {"pending": 0, "leased": 2, "done": 0}

    def test_complete_and_done(self, tmp_path, clock):
        _, _, leases, _ = _publish(tmp_path, clock)
        board = LeaseBoard(leases, now=clock)
        while (lease := board.claim("w1", ttl=60)) is not None:
            assert board.complete(lease.key, "w1")
        assert board.done()
        assert board.counts() == {"pending": 0, "leased": 0, "done": 2}

    def test_release_returns_the_point_to_the_pool(self, tmp_path, clock):
        _, _, leases, _ = _publish(tmp_path, clock)
        board = LeaseBoard(leases, now=clock)
        lease = board.claim("w1", ttl=60)
        board.release(lease.key, "w1")
        assert board.counts()["pending"] == 2
        again = board.claim("w2", ttl=60)
        assert again.key == lease.key  # first runnable lease again

    def test_points_already_in_the_serving_store_publish_as_done(
        self, tmp_path, clock, store_root
    ):
        engine = tiny_engine(store_root)
        points = tiny_points(ranks=(1, 2))
        engine.run(points[:1])  # pre-satisfy one point
        summary = publish_campaign(engine, points, tmp_path / "leases.json", now=clock)
        assert summary["pending"] == 1
        assert summary["done"] == 1

    def test_missing_board_raises(self, tmp_path, clock):
        with pytest.raises(LeaseBoardError, match="no lease board"):
            LeaseBoard(tmp_path / "nope.json", now=clock).claim("w1")

    def test_heartbeat_extends_only_the_holders_lease(self, tmp_path, clock):
        _, _, leases, _ = _publish(tmp_path, clock)
        board = LeaseBoard(leases, now=clock)
        lease = board.claim("w1", ttl=60)
        clock.advance(50)
        assert board.heartbeat(lease.key, "w1", ttl=60)
        clock.advance(50)  # would have expired without the heartbeat
        assert board.claim("w2", ttl=60).key != lease.key

    def test_stale_lock_is_broken(self, tmp_path, clock):
        _, _, leases, _ = _publish(tmp_path, clock)
        board = LeaseBoard(leases, now=clock, stale_lock_after=0.0)
        lock = leases.with_suffix(leases.suffix + ".lock")
        lock.write_text("")  # a dead worker's abandoned lock
        assert board.claim("w1", ttl=60) is not None
        assert not lock.exists()


class TestExpiryReclamation:
    def test_expired_lease_is_reclaimable_with_attempts_bumped(self, tmp_path, clock):
        _, _, leases, _ = _publish(tmp_path, clock)
        board = LeaseBoard(leases, now=clock)
        lease = board.claim("w1", ttl=60)
        clock.advance(61)  # w1 dies silently; its deadline passes
        reclaimed = board.claim("w2", ttl=60)
        assert reclaimed.key == lease.key
        assert reclaimed.worker == "w2"
        assert reclaimed.attempts == lease.attempts + 1

    def test_unexpired_lease_is_not_stealable(self, tmp_path, clock):
        _, _, leases, _ = _publish(tmp_path, clock, ranks=(1,))
        board = LeaseBoard(leases, now=clock)
        board.claim("w1", ttl=60)
        clock.advance(59)
        assert board.claim("w2", ttl=60) is None

    def test_late_completion_after_reclaim_is_detected(self, tmp_path, clock):
        _, _, leases, _ = _publish(tmp_path, clock, ranks=(1,))
        board = LeaseBoard(leases, now=clock)
        lease = board.claim("w1", ttl=60)
        clock.advance(61)
        board.claim("w2", ttl=60)
        # w1 comes back from the dead and tries to settle its old lease
        assert not board.complete(lease.key, "w1")

    def test_dead_worker_point_reexecuted_exactly_once(self, tmp_path, clock):
        """The acceptance scenario: a worker claims a lease and crashes
        before executing.  After expiry another worker reclaims and runs
        it; force-evaluation counts prove each point executed exactly
        once overall — reclamation added work for the lost point only,
        and nothing ran twice.
        """
        engine, points, leases, _ = _publish(tmp_path, clock, ranks=(1, 2))
        board = LeaseBoard(leases, now=clock)

        # worker A claims the first point and dies without running it
        doomed = board.claim("worker-a", ttl=60)
        assert doomed is not None

        # measure per-point cost: force evaluations are deterministic
        baseline = FORCE_EVALUATIONS.snapshot()
        probe = ResultStore(None)
        work_probe = tiny_engine()
        work_probe.store = probe
        work_probe.run([points[0]])
        per_point = {points[0].label(): FORCE_EVALUATIONS.delta(baseline)}
        baseline = FORCE_EVALUATIONS.snapshot()
        work_probe.run([points[1]])
        per_point[points[1].label()] = FORCE_EVALUATIONS.delta(baseline)

        clock.advance(61)  # worker A's lease expires

        baseline = FORCE_EVALUATIONS.snapshot()
        store_b = ResultStore(tmp_path / "host-b")
        stats = work_campaign(
            leases, store_b, "worker-b", ttl=60, now=clock
        )
        executed = FORCE_EVALUATIONS.delta(baseline)

        # worker B ran BOTH points (the reclaimed one and the fresh one),
        # each exactly once: the force-evaluation total is the exact sum
        assert stats["claimed"] == 2
        assert stats["executed"] == 2
        assert executed == sum(per_point.values())
        assert board.done()

        # the reclaimed lease's audit trail shows the extra attempt
        attempts = {lease.label: lease.attempts for lease in board.leases()}
        assert attempts[doomed.label] == 1
        assert sum(attempts.values()) == 1

        # and the records match a single-host run bit-for-bit
        single = ResultStore(tmp_path / "single")
        single_engine = tiny_engine(tmp_path / "single")
        single_engine.run(points)
        assert verify_stores_match(store_b, ResultStore(tmp_path / "single")) == []

    def test_resumed_worker_does_not_reexecute_its_own_records(self, tmp_path, clock):
        """A worker that crashed *after* storing but before completing:
        on restart the lease expired, the record is already in its store,
        and settling it must cost zero force evaluations."""
        engine, points, leases, _ = _publish(tmp_path, clock, ranks=(1,))
        store = ResultStore(tmp_path / "host-a")
        work_campaign(leases, store, "worker-a", ttl=60, now=clock)

        # simulate the crash-after-put: force the lease back to claimable
        board = LeaseBoard(leases, now=clock)
        lease = board.leases()[0]
        board.release(lease.key, lease.worker)  # no-op (state is done) ...
        # ... so rewrite it as an expired claim, the true crash shape
        doc = __import__("json").loads(leases.read_text())
        doc["leases"][0].update(state="leased", worker="worker-a", expires=0.0)
        leases.write_text(__import__("json").dumps(doc))

        baseline = FORCE_EVALUATIONS.snapshot()
        reopened = ResultStore(tmp_path / "host-a")
        stats = work_campaign(leases, reopened, "worker-a", ttl=60, now=clock)
        counts = {k: stats[k] for k in ("claimed", "executed", "hits", "failed", "lost")}
        assert counts == {"claimed": 1, "executed": 0, "hits": 1, "failed": 0, "lost": 0}
        assert FORCE_EVALUATIONS.delta(baseline) == 0
        assert board.done()


class TestWorkCampaign:
    def test_workers_refuse_a_foreign_cost_model(self, tmp_path, clock):
        import dataclasses

        from repro.parallel.costmodel import PIII_1GHZ

        _, _, leases, _ = _publish(tmp_path, clock, ranks=(1,))
        slower = dataclasses.replace(PIII_1GHZ, pair_cost=PIII_1GHZ.pair_cost * 2)
        with pytest.raises(ValueError, match="cost model does not match"):
            work_campaign(
                leases, ResultStore(None), "w1", cost=slower, now=clock
            )

    def test_failed_point_is_released_not_done(self, tmp_path, clock, monkeypatch):
        _, _, leases, _ = _publish(tmp_path, clock, ranks=(1,))
        from repro.campaign import federation

        def boom(*a, **kw):
            raise RuntimeError("synthetic point failure")

        monkeypatch.setattr(federation, "execute_point", boom)
        stats = work_campaign(
            leases, ResultStore(None), "w1", max_points=1, now=clock
        )
        assert stats["failed"] == 1
        assert LeaseBoard(leases, now=clock).counts()["pending"] == 1

    def test_two_workers_drain_a_board_and_merge_matches_single_host(self, tmp_path, clock):
        engine, points, leases, _ = _publish(tmp_path, clock, ranks=(1, 2, 4))
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        sa = work_campaign(leases, a, "wa", max_points=2, now=clock)
        sb = work_campaign(leases, b, "wb", now=clock)
        assert sa["executed"] + sb["executed"] == 3
        assert LeaseBoard(leases, now=clock).done()

        merged = ResultStore(tmp_path / "merged")
        merge_into_store(merged, [a, b])
        single_engine = tiny_engine(tmp_path / "single")
        single_engine.run(points)
        assert verify_stores_match(merged, ResultStore(tmp_path / "single")) == []
