"""Result-store durability: crashes, corruption, compaction, reopening."""

import json

import pytest

from repro.campaign import ResultStore
from repro.campaign.keys import SCHEMA_VERSION
from repro.campaign.store import record_from_dict, record_to_dict

from .conftest import tiny_engine, tiny_points


def _populated(store_root, ranks=(1, 2)):
    """A store on disk holding one tiny campaign's records."""
    engine = tiny_engine(store_root)
    result = engine.run(tiny_points(ranks))
    assert result.ok
    engine.store.close()
    return [engine.key_for(p) for p in tiny_points(ranks)]


class TestRoundTrip:
    def test_reopened_store_serves_the_same_records(self, store_root):
        keys = _populated(store_root)
        engine = tiny_engine(store_root)
        records = [r for r in engine.run(tiny_points()).records]
        reopened = ResultStore(store_root)
        assert len(reopened) == len(keys)
        for key, record in zip(keys, records):
            assert record_to_dict(reopened.get(key)) == record_to_dict(record)

    def test_record_dict_roundtrip(self, store_root):
        _populated(store_root, ranks=(1,))
        (entry,) = ResultStore(store_root).entries()
        assert record_from_dict(record_to_dict(entry.record)) == entry.record

    def test_memory_only_store(self):
        engine = tiny_engine(None)
        result = engine.run(tiny_points(ranks=(1,)))
        assert result.ok
        assert engine.store.root is None
        assert len(engine.store) == 1
        assert engine.store.gc() == (1, 0)


class TestCrashTolerance:
    def test_truncated_tail_skipped_with_warning(self, store_root):
        """The atomic-write promise: a crash mid-append loses at most the
        final line, and loading warns instead of failing."""
        keys = _populated(store_root)
        (shard,) = store_root.glob("shard-*.jsonl")
        whole = shard.read_text()
        # simulate a kill during the third append: half a JSON document
        shard.write_text(whole + whole.splitlines()[0][: len(whole) // 4])

        with pytest.warns(UserWarning, match="corrupt store line skipped"):
            store = ResultStore(store_root)
        assert len(store) == len(keys)
        for key in keys:
            assert key in store

    def test_resume_completes_only_the_missing_points(self, store_root):
        """A killed campaign resumes: finished points are hits, only the
        points the crash lost are executed."""
        engine = tiny_engine(store_root)
        interrupted = engine.run(tiny_points(ranks=(1,)))  # "killed" after 1 point
        assert [p.status for p in interrupted.manifest.points] == ["ran"]
        engine.store.close()

        resumed = tiny_engine(store_root).run(tiny_points(ranks=(1, 2, 4)))
        assert resumed.ok
        statuses = [p.status for p in resumed.manifest.points]
        assert statuses == ["hit", "ran", "ran"]

    def test_resume_after_corruption_reruns_lost_points(self, store_root):
        keys = _populated(store_root)
        (shard,) = store_root.glob("shard-*.jsonl")
        lines = shard.read_text().splitlines()
        shard.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:20])

        with pytest.warns(UserWarning):
            engine = tiny_engine(store_root)
        result = engine.run(tiny_points())
        assert result.ok
        statuses = {p.key: p.status for p in result.manifest.points}
        assert statuses[keys[0]] == "hit"
        assert statuses[keys[1]] == "ran"  # the corrupted line's point


class TestGc:
    def test_gc_compacts_to_one_shard(self, store_root):
        _populated(store_root)
        store = ResultStore(store_root)
        # superseded duplicate: same key written twice
        entry = next(store.entries())
        store.put(entry.key, entry.record, {"superseded": True})
        store.close()

        store = ResultStore(store_root)
        kept, dropped = store.gc()
        assert kept == 2
        assert dropped >= 1
        shards = sorted(p.name for p in store_root.glob("*.jsonl"))
        assert shards == ["shard-compact.jsonl"]
        assert len(ResultStore(store_root)) == 2

    def test_gc_drops_stale_schema_and_corrupt_lines(self, store_root):
        keys = _populated(store_root, ranks=(1,))
        (shard,) = store_root.glob("shard-*.jsonl")
        doc = json.loads(shard.read_text().splitlines()[0])
        doc["schema"] = SCHEMA_VERSION - 1
        doc["key"] = "0" * 64
        with open(shard, "a") as f:
            f.write(json.dumps(doc) + "\n")
            f.write("{ not json\n")

        with pytest.warns(UserWarning):
            store = ResultStore(store_root)
        assert "0" * 64 not in store  # stale schema never hits
        kept, dropped = store.gc()
        assert kept == 1
        assert dropped == 2
        assert keys[0] in ResultStore(store_root)


class TestDescribe:
    def test_statistics(self, store_root):
        _populated(store_root)
        stats = ResultStore(store_root).describe()
        assert stats["entries"] == 2
        assert stats["shards"] == 1
        assert stats["bytes"] > 0
        assert stats["schema"] == SCHEMA_VERSION
        assert stats["root"] == str(store_root)
