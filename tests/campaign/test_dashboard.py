"""Dashboard edge cases: zero-throughput workers, torn logs, report links.

The dashboard is pure observation, so it must render *any* state the
campaign can be in — including the awkward early ones: a worker that
holds leases but has completed nothing yet (no rate, no mean, no
ZeroDivisionError), a runlog holding only the torn tail of a crashed
writer, a store with no published report.  Every such hole renders an
explicit ``n/a``.
"""

from __future__ import annotations

import json

from repro.campaign import ResultStore
from repro.campaign.dashboard import dashboard, dashboard_data, report_link
from repro.campaign.leases import Lease


class StubBoard:
    """A Board-shaped object serving a fixed lease list."""

    def __init__(self, leases, url=None):
        self._leases = leases
        if url is not None:
            self.url = url

    def leases(self):
        return list(self._leases)


def _leased(key, worker, expires):
    return Lease(key=key, label=key, point={}, state="leased",
                 worker=worker, expires=expires)


def test_worker_with_zero_completed_points_renders_na():
    """A freshly-claimed campaign: leases held, nothing finished.  The
    old rendering divided by zero on the mean and silently dropped the
    ETA line; now both are explicit n/a."""
    board = StubBoard([
        _leased("k1", "newcomer", expires=1500.0),
        Lease(key="k2", label="k2", point={}),  # pending
    ])
    data = dashboard_data(ResultStore(None), board, now=1000.0)
    assert data["workers"]["newcomer"] == {
        "points": 0, "wall": 0.0, "mean_wall": None
    }
    assert data["eta_seconds"] is None

    text = dashboard(ResultStore(None), board, now=1000.0)
    assert "ETA n/a" in text
    assert "newcomer" in text and "mean n/a" in text


def test_zero_elapsed_entries_do_not_break_the_rate(tmp_path):
    """Store entries whose meta carries no elapsed time (wall 0) must
    not divide by zero in either the mean or the ETA rate."""
    store = ResultStore(tmp_path / "cache")
    from repro.core.responses import ResponseRecord

    record = ResponseRecord(
        network="tcp-gige", middleware="mpi", cpus_per_node=1, n_ranks=1,
        replicate=0, wall_time=1.0, classic_time=0.5, pme_time=0.5,
        classic_comp=0.5, classic_comm=0.0, classic_sync=0.0,
        pme_comp=0.5, pme_comm=0.0, pme_sync=0.0,
        comm_mean_mbs=0.0, comm_min_mbs=0.0, comm_max_mbs=0.0,
        final_energy=-1.0,
    )
    store.put("k1", record, meta={"worker": "w0"})  # no "elapsed" key
    board = StubBoard([_leased("k2", "w0", expires=1500.0)])
    data = dashboard_data(store, board, now=1000.0)
    assert data["workers"]["w0"]["mean_wall"] is None
    assert data["eta_seconds"] is None
    assert "mean n/a" in dashboard(store, board, now=1000.0)


def test_runlog_with_only_a_torn_tail_renders_na(tmp_path):
    log = tmp_path / "run.jsonl"
    log.write_text('{"event": "start", "ts": 99')  # torn mid-write
    data = dashboard_data(ResultStore(None), runlog=str(log))
    assert data["activity"] == {"events": 0, "last_event": None, "last_age_s": None}
    assert "activity: n/a" in dashboard(ResultStore(None), runlog=str(log))


def test_runlog_activity_renders_the_freshest_event(tmp_path):
    log = tmp_path / "run.jsonl"
    lines = [
        json.dumps({"event": "claim", "ts": 990.0}),
        json.dumps({"event": "complete", "ts": 997.0}),
        '{"torn":',
    ]
    log.write_text("\n".join(lines))
    data = dashboard_data(ResultStore(None), now=1000.0, runlog=str(log))
    assert data["activity"]["events"] == 2
    assert data["activity"]["last_event"] == "complete"
    assert data["activity"]["last_age_s"] == 3.0
    assert "last 'complete' 3 s ago" in dashboard(
        ResultStore(None), now=1000.0, runlog=str(log)
    )


def test_missing_runlog_renders_na(tmp_path):
    data = dashboard_data(ResultStore(None), runlog=str(tmp_path / "absent.jsonl"))
    assert data["activity"]["events"] == 0
    assert "activity: n/a" in dashboard(
        ResultStore(None), runlog=str(tmp_path / "absent.jsonl")
    )


def test_report_link_prefers_the_coordinator(tmp_path):
    http_board = StubBoard([], url="http://coord:8765")
    assert report_link(None, http_board) == "http://coord:8765/v1/report"

    store = ResultStore(tmp_path / "cache")
    assert report_link(store, None) is None  # nothing published yet
    reports = tmp_path / "cache" / "reports"
    reports.mkdir(parents=True)
    saved = reports / "report-latest.json"
    saved.write_text("{}")
    assert report_link(store, None) == str(saved)
    assert f"report: {saved}" in dashboard(store)
