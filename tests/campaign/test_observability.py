"""Campaign observability: metrics in manifests, run logs, traces, dashboard.

The hard invariant rides along everywhere: observability is passive —
records, stores and timings are bit-identical whether or not metrics,
logs or traces are being collected (the engine collects them always; the
span traces only when ``trace_dir`` is set).
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    LeaseBoard,
    ResultStore,
    dashboard,
    merge_into_store,
    point_trace_path,
    publish_campaign,
    verify_stores_match,
    work_campaign,
)
from repro.campaign.dashboard import dashboard_data
from repro.instrument.runlog import read_runlog, reconstruct_history
from repro.instrument.tracing import validate_chrome_trace

from .conftest import tiny_engine, tiny_points


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestEngineMetrics:
    def test_manifest_carries_the_campaign_metrics_delta(self, store_root):
        engine = tiny_engine(store_root)
        result = engine.run(tiny_points())
        metrics = result.manifest.metrics
        counters = metrics["counters"]
        assert counters["campaign.points"]["labels"] == {"status=ran": 2}
        assert counters["campaign.cache_misses"]["total"] == 2
        assert counters["run.points_executed"]["total"] == 2
        assert metrics["histograms"]["campaign.point_wall_seconds"]["count"] == 2
        # the manifest on disk has them too (post-json round trip)
        man_path = store_root / "manifests" / f"{result.manifest.campaign_id}.json"
        doc = json.loads(man_path.read_text())
        assert doc["metrics"]["counters"]["campaign.points"]["total"] == 2

    def test_second_run_counts_hits_not_work(self, store_root):
        tiny_engine(store_root).run(tiny_points())
        result = tiny_engine(store_root).run(tiny_points())
        counters = result.manifest.metrics["counters"]
        assert counters["campaign.points"]["labels"] == {"status=hit": 2}
        assert counters["campaign.cache_hits"]["total"] == 2
        assert "run.points_executed" not in counters

    def test_pool_worker_metrics_fold_into_the_manifest(self, store_root):
        engine = tiny_engine(store_root, n_workers=2)
        result = engine.run(tiny_points())
        counters = result.manifest.metrics["counters"]
        # the execution happened in worker processes; their deltas carry
        # the MD work counters back to the parent's manifest
        assert counters["run.points_executed"]["total"] == 2
        assert counters["md.force_evaluations"]["total"] > 0


class TestEngineRunLog:
    def test_inline_run_leaves_a_replayable_event_log(self, store_root):
        engine = tiny_engine(store_root)
        result = engine.run(tiny_points())
        cid = result.manifest.campaign_id
        log_path = store_root / "logs" / f"campaign-{cid}.jsonl"
        events = list(read_runlog(log_path))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert kinds.count("point_launch") == 2
        assert kinds.count("point_retire") == 2
        assert all(e["campaign"] == cid for e in events)

        history = reconstruct_history([log_path])
        for key in (p.key for p in result.manifest.points):
            assert [e["event"] for e in history[key]] == [
                "point_launch", "point_retire",
            ]

    def test_rerun_logs_hits(self, store_root):
        tiny_engine(store_root).run(tiny_points())
        result = tiny_engine(store_root).run(tiny_points())
        cid = result.manifest.campaign_id
        events = list(read_runlog(store_root / "logs" / f"campaign-{cid}.jsonl"))
        hits = [e for e in events if e["event"] == "point_hit"]
        assert len(hits) == 2


class TestTraceDir:
    def test_traced_campaign_writes_valid_traces_and_identical_records(
        self, tmp_path
    ):
        trace_dir = tmp_path / "traces"
        traced = tiny_engine(tmp_path / "a", trace_dir=str(trace_dir))
        plain = tiny_engine(tmp_path / "b")
        points = tiny_points()
        traced.run(points)
        plain.run(points)

        # bit-identical stores with tracing on vs off
        assert verify_stores_match(
            ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        ) == []

        # one point trace per executed point, each structurally valid
        for point in points:
            path = point_trace_path(trace_dir, traced.key_for(point))
            doc = json.loads(path.read_text())
            assert validate_chrome_trace(doc) == []
            assert any(ev.get("ph") == "X" for ev in doc["traceEvents"])

        # plus the engine's host-side trace
        (host_trace,) = sorted(trace_dir.glob("campaign-*-host.trace.json"))
        doc = json.loads(host_trace.read_text())
        assert validate_chrome_trace(doc) == []
        assert sum(1 for ev in doc["traceEvents"] if ev.get("ph") == "X") == 2

    def test_untraced_engine_writes_no_trace_files(self, tmp_path):
        engine = tiny_engine(tmp_path / "a")
        engine.run(tiny_points())
        assert not list(tmp_path.glob("**/*.trace.json"))


class TestFederatedObservability:
    def test_two_worker_campaign_merges_metrics_and_reconstructs_history(
        self, tmp_path
    ):
        clock = FakeClock()
        engine = tiny_engine()
        points = tiny_points(ranks=(1, 2, 4))
        leases = tmp_path / "leases.json"
        publish_campaign(engine, points, leases, now=clock)

        a = ResultStore(tmp_path / "host-a")
        b = ResultStore(tmp_path / "host-b")
        sa = work_campaign(leases, a, "wa", max_points=2, now=clock)
        sb = work_campaign(leases, b, "wb", now=clock)
        assert sa["metrics"]["counters"]["run.points_executed"]["total"] == 2
        assert sb["metrics"]["counters"]["run.points_executed"]["total"] == 1

        # each worker dumped its delta next to its store
        assert (tmp_path / "host-a" / "metrics-wa.json").exists()
        assert (tmp_path / "host-b" / "metrics-wb.json").exists()

        merged = ResultStore(tmp_path / "merged")
        stats = merge_into_store(merged, [a, b])
        manifest = stats["manifest"]
        counters = manifest.metrics["counters"]
        assert counters["run.points_executed"]["total"] == 3
        assert counters["leases.claimed"]["labels"] == {
            "worker=wa": 2, "worker=wb": 1,
        }

        # merged logs reconstruct the full point -> attempt -> host story
        log_files = sorted((tmp_path / "merged" / "logs").glob("worker-*.jsonl"))
        assert [p.name for p in log_files] == ["worker-wa.jsonl", "worker-wb.jsonl"]
        history = reconstruct_history(log_files)
        for lease in LeaseBoard(leases, now=clock).leases():
            events = history[lease.key]
            assert [e["event"] for e in events] == [
                "lease_claim", "point_executed", "lease_complete",
            ]
            assert {e["worker"] for e in events} <= {"wa", "wb"}
            assert all(e["attempt"] == 0 for e in events)

    def test_reclaimed_lease_shows_up_in_metrics_and_logs(self, tmp_path):
        from repro.instrument.metrics import REGISTRY

        clock = FakeClock()
        engine = tiny_engine()
        leases = tmp_path / "leases.json"
        publish_campaign(engine, tiny_points(ranks=(1,)), leases, now=clock)

        board = LeaseBoard(leases, now=clock)
        assert board.claim("dead-worker", ttl=60) is not None
        clock.advance(61)

        before = REGISTRY.snapshot()
        store = ResultStore(tmp_path / "host-b")
        work_campaign(leases, store, "wb", now=clock)
        delta = REGISTRY.delta(before)
        assert delta["counters"]["leases.reclaimed"]["total"] == 1

        history = reconstruct_history(
            [tmp_path / "host-b" / "logs" / "worker-wb.jsonl"]
        )
        (key,) = [k for k in history if k]
        assert history[key][0]["attempt"] == 1  # the reclaim is visible


class TestDashboard:
    def test_dashboard_reads_board_and_store_without_mutating(self, tmp_path):
        clock = FakeClock()
        engine = tiny_engine()
        leases = tmp_path / "leases.json"
        publish_campaign(engine, tiny_points(ranks=(1, 2)), leases, now=clock)
        board = LeaseBoard(leases, now=clock)

        store = ResultStore(tmp_path / "host-a")
        work_campaign(leases, store, "wa", max_points=1, now=clock)
        board.claim("wb", ttl=60)
        before = (tmp_path / "leases.json").read_bytes()

        data = dashboard_data(store, board, now=clock())
        assert data["counts"] == {"pending": 0, "leased": 1, "done": 1}
        assert data["entries"] == 1
        (flight,) = data["in_flight"]
        assert flight["worker"] == "wb"
        assert flight["seconds_left"] == pytest.approx(60.0)
        assert data["workers"]["wa"]["points"] == 1
        assert data["eta_seconds"] is None or data["eta_seconds"] >= 0

        text = dashboard(store, board, now=clock())
        assert "1 in flight" in text
        assert "wb" in text
        assert "throughput:" in text
        assert (tmp_path / "leases.json").read_bytes() == before  # untouched

    def test_expired_lease_is_flagged(self, tmp_path):
        clock = FakeClock()
        engine = tiny_engine()
        leases = tmp_path / "leases.json"
        publish_campaign(engine, tiny_points(ranks=(1,)), leases, now=clock)
        board = LeaseBoard(leases, now=clock)
        board.claim("w-dead", ttl=60)
        clock.advance(120)
        data = dashboard_data(None, board, now=clock())
        assert data["expired"] == 1
        assert "EXPIRED" in dashboard(None, board, now=clock())

    def test_store_only_view(self, store_root):
        tiny_engine(store_root).run(tiny_points())
        text = dashboard(ResultStore(store_root), None)
        assert "2 cached result(s)" in text
