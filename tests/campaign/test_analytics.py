"""Post-hoc analytics: determinism, zero-force-eval, golden reports.

The contract under test (DESIGN.md §14): a report over a warm store is
byte-identical regardless of worker count and of how the same entries
are distributed across shard files, and producing it performs zero
force evaluations.  On top of that, each analyzer gets a golden test —
the breakdown report must reproduce the paper's comp/comm/sync tables
from stored records alone, the drift analyzer must flag a deliberately
corrupted record, the trend analyzer must attribute a regression to a
phase, and the coverage analyzer must name missing factorial cells.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import ResultStore, run_analysis
from repro.campaign.analytics import (
    AnalysisError,
    map_shards,
    merge_rows,
    render,
    to_json_bytes,
)
from repro.campaign.analytics.coverage import rep203_verdict
from repro.campaign.analytics.trend import load_trend_source, trend_report
from repro.core.design import DesignPoint
from repro.core.factors import FOCAL_POINT
from repro.instrument.counters import FORCE_EVALUATIONS

from .conftest import tiny_engine


def _factorial_points(middlewares=("mpi", "cmpi"), ranks=(1, 2)):
    return [
        DesignPoint(config=FOCAL_POINT.with_level("middleware", mw), n_ranks=p)
        for mw in middlewares
        for p in ranks
    ]


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A 2x2 factorial (middleware x p) executed once for the module."""
    root = tmp_path_factory.mktemp("analytics") / "cache"
    engine = tiny_engine(root)
    result = engine.run(_factorial_points())
    assert result.ok
    return root


def _split_store(src, dst, n_shards=3):
    """The same entries re-dealt round-robin across differently-named shards."""
    dst.mkdir(parents=True)
    lines = []
    for shard in sorted(src.glob("*.jsonl")):
        lines.extend(line for line in shard.read_text().splitlines() if line.strip())
    for i in range(n_shards):
        chunk = lines[i::n_shards]
        (dst / f"shard-{chr(ord('a') + i)}.jsonl").write_text(
            "".join(line + "\n" for line in chunk)
        )
    manifests = src / "manifests"
    if manifests.is_dir():  # manifests ride along: rep203 aggregates read them
        (dst / "manifests").mkdir()
        for path in manifests.glob("*.json"):
            (dst / "manifests" / path.name).write_bytes(path.read_bytes())


# -- determinism ------------------------------------------------------


@pytest.mark.parametrize("kind", ["report", "drift", "coverage"])
def test_reports_are_byte_identical_across_worker_counts(warm_store, kind):
    inline = run_analysis(kind, warm_store, workers=0, save=False)
    pooled = run_analysis(kind, warm_store, workers=4, save=False)
    assert to_json_bytes(inline) == to_json_bytes(pooled)


def test_report_is_invariant_to_shard_layout(warm_store, tmp_path):
    """Re-dealing the same entries across other shard files changes nothing
    an analyzer reads — the report body is identical (only the shard-name
    hash in the analysis id and the coverage shard table may differ)."""
    reshuffled = tmp_path / "reshuffled"
    _split_store(warm_store, reshuffled)
    a = run_analysis("report", warm_store, save=False)
    b = run_analysis("report", reshuffled, save=False)
    a.pop("analysis_id"), b.pop("analysis_id")
    assert to_json_bytes(a) == to_json_bytes(b)


def test_merge_rows_is_shard_order_deterministic(warm_store, tmp_path):
    reshuffled = tmp_path / "reshuffled"
    _split_store(warm_store, reshuffled, n_shards=4)
    assert merge_rows(map_shards(warm_store)) == merge_rows(map_shards(reshuffled))


def test_analysis_performs_zero_force_evaluations(warm_store):
    mark = FORCE_EVALUATIONS.snapshot()
    for kind in ("report", "drift", "coverage"):
        run_analysis(kind, warm_store, save=False)
    assert FORCE_EVALUATIONS.delta(mark) == 0


def test_saved_report_is_the_canonical_bytes(warm_store):
    doc = run_analysis("report", warm_store, save=True)
    saved = warm_store / "reports" / "report-latest.json"
    assert saved.read_bytes() == to_json_bytes(doc)


def test_empty_store_is_an_analysis_error(tmp_path):
    with pytest.raises(AnalysisError, match="does not exist"):
        run_analysis("report", tmp_path / "nothing")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(AnalysisError, match="no shards"):
        run_analysis("report", empty)


# -- breakdown report (the paper's tables) ----------------------------


def test_breakdown_report_matches_the_stored_records(warm_store):
    doc = run_analysis("report", warm_store, save=False)
    store = ResultStore(warm_store)
    by_identity = {
        (e.record.middleware, e.record.n_ranks): e.record for e in store.entries()
    }
    assert doc["n_records"] == len(by_identity) == 4
    for group in doc["groups"]:
        mw = group["group"]["middleware"]
        for point in group["points"]:
            record = by_identity[(mw, point["series"])]
            assert point["wall_time"] == record.wall_time
            classic = point["phases"]["classic"]
            assert classic["seconds"]["comp"] == record.classic_comp
            assert classic["total"] == record.classic_time
            if classic["total"] > 0:
                assert sum(classic["pct"].values()) == pytest.approx(100.0, abs=0.05)


def test_breakdown_report_reproduces_the_paper_shape():
    """Acceptance: myoglobin classic+PME, p in {1, 2, 4, 8}, from records
    alone — serial runs are all-computation, parallel overhead fractions
    grow with p, and speedup/efficiency come out of the stored walls."""
    import tempfile

    from repro.parallel import MDRunConfig

    with tempfile.TemporaryDirectory() as tmp:
        root = f"{tmp}/cache"
        engine = tiny_engine(
            root, workload="myoglobin-pme", config=MDRunConfig(n_steps=2)
        )
        points = [DesignPoint(config=FOCAL_POINT, n_ranks=p) for p in (1, 2, 4, 8)]
        assert engine.run(points).ok

        mark = FORCE_EVALUATIONS.snapshot()
        doc = run_analysis("report", root, save=False)
        assert FORCE_EVALUATIONS.delta(mark) == 0

        (group,) = doc["groups"]
        assert [pt["series"] for pt in group["points"]] == [1, 2, 4, 8]
        serial, *parallel = group["points"]
        for phase in ("classic", "pme"):
            assert serial["phases"][phase]["pct"]["comp"] == 100.0
            assert serial["phases"][phase]["pct"]["comm"] == 0.0
        assert serial["speedup"] == 1.0 and serial["efficiency"] == 1.0
        overheads = [pt["phases"]["total"]["overhead_fraction"] for pt in parallel]
        assert all(o > 0 for o in overheads)
        assert overheads == sorted(overheads)  # overhead grows with p
        for pt in parallel:
            assert pt["speedup"] == pytest.approx(
                serial["wall_time"] / pt["wall_time"], abs=1e-6
            )
            assert pt["efficiency"] == pytest.approx(
                pt["speedup"] / pt["series"], abs=1e-6
            )
        assert group["speedup_ref_p"] == 1
        # the title question's quantitative answer exists per phase
        assert set(group["crossover"]) == {"classic", "pme", "total"}


def test_breakdown_rejects_unknown_series(warm_store):
    with pytest.raises(AnalysisError, match="unknown series axis"):
        run_analysis("report", warm_store, series="nonsense", save=False)


# -- drift ------------------------------------------------------------


def _copy_with_mutation(src, dst, mutate):
    """Copy a store, appending one mutated duplicate of its first entry."""
    _split_store(src, dst, n_shards=1)
    shard = next(iter(sorted(dst.glob("*.jsonl"))))
    doc = json.loads(shard.read_text().splitlines()[0])
    doc["key"] = "mutant-" + doc["key"][:8]
    mutate(doc["record"])
    with shard.open("a") as f:
        f.write(json.dumps(doc) + "\n")


def test_drift_is_clean_on_a_known_good_store(warm_store):
    doc = run_analysis("drift", warm_store, save=False)
    assert doc["ok"] and doc["findings"] == []
    for group in doc["workloads"]:
        # deterministic simulator: one energy cluster per (workload, strategy)
        assert len(group["clusters"]) == 1
        assert group["clusters"][0]["n"] == group["n_records"]


def test_drift_flags_a_corrupted_energy(warm_store, tmp_path):
    bad = tmp_path / "bad"
    _copy_with_mutation(
        warm_store, bad, lambda r: r.__setitem__("final_energy", r["final_energy"] + 1.0)
    )
    doc = run_analysis("drift", bad, save=False)
    assert not doc["ok"]
    checks = {f["check"] for f in doc["findings"]}
    assert "energy-consensus" in checks
    (finding,) = [f for f in doc["findings"] if f["check"] == "energy-consensus"]
    assert finding["key"].startswith("mutant-")


def test_drift_flags_non_finite_energy_and_broken_bookkeeping(warm_store, tmp_path):
    bad = tmp_path / "bad"
    _copy_with_mutation(
        warm_store,
        bad,
        lambda r: (r.__setitem__("final_energy", float("nan")),
                   r.__setitem__("classic_comp", r["classic_comp"] + 0.5)),
    )
    doc = run_analysis("drift", bad, save=False)
    checks = {f["check"] for f in doc["findings"]}
    assert {"finite-energy", "phase-bookkeeping"} <= checks


# -- trend ------------------------------------------------------------


def _bench_doc(p8=1.0, pme_comp=0.35):
    return {
        "schema": 1,
        "seconds": {"p1": 0.8, "p8": p8},
        "exec_ab": {"seconds": {"serial-numpy": 1.0}},
        "spatial": {"seconds": {"replicated_p8": 0.6, "spatial_p8": 1.5}},
        "breakdown": {
            "p8": {
                "classic_comp": 0.56, "classic_comm": 0.32, "classic_sync": 0.44,
                "pme_comp": pme_comp, "pme_comm": 0.36, "pme_sync": 0.21,
                "virtual_total": 2.2,
            }
        },
    }


def test_trend_gates_a_bench_regression_and_attributes_it(tmp_path):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(_bench_doc()))
    # p8 wall doubles AND its PME computation split doubles: the trend
    # report must fail the gate and name pme the dominant phase
    cand.write_text(json.dumps(_bench_doc(p8=2.0, pme_comp=0.70)))
    doc = trend_report(load_trend_source(base), load_trend_source(cand), factor=1.25)
    assert not doc["ok"]
    (reg,) = doc["regressions"]
    assert reg["name"] == "bench/p8" and reg["ratio"] == 2.0
    assert reg["attribution"]["dominant_phase"] == "pme"


def test_trend_marks_host_side_slowdowns(tmp_path):
    base = tmp_path / "base.json"
    cand = tmp_path / "cand.json"
    base.write_text(json.dumps(_bench_doc()))
    cand.write_text(json.dumps(_bench_doc(p8=2.0)))  # wall up, splits unchanged
    doc = trend_report(load_trend_source(base), load_trend_source(cand))
    (reg,) = doc["regressions"]
    assert reg["attribution"]["dominant_phase"] is None
    assert "host-side" in reg["attribution"]["note"]


def test_trend_store_against_itself_is_clean(warm_store):
    doc = run_analysis("trend", warm_store, against=warm_store, save=False)
    assert doc["ok"]
    assert doc["compared"] == 3 * 4  # wall/classic/pme per record
    assert doc["regressions"] == [] and doc["improvements"] == []


def test_trend_requires_a_baseline(warm_store):
    with pytest.raises(AnalysisError, match="--against"):
        run_analysis("trend", warm_store, save=False)


# -- coverage ---------------------------------------------------------


def test_coverage_of_a_complete_factorial_is_clean(warm_store):
    doc = run_analysis("coverage", warm_store, save=False)
    assert doc["ok"]
    assert doc["missing_cells"] == 0
    assert doc["orphaned_shards"] == []
    (grid,) = doc["grids"]
    assert grid["expected_cells"] == grid["observed_cells"] == 4


def test_coverage_names_missing_factorial_cells(tmp_path):
    root = tmp_path / "cache"
    engine = tiny_engine(root)
    points = _factorial_points()[:-1]  # drop cmpi p=2: one hole in the grid
    assert engine.run(points).ok
    doc = run_analysis("coverage", root, save=False)
    assert doc["ok"]  # sparse is not damage
    (grid,) = doc["grids"]
    assert grid["missing_cells"] == 1
    (cell,) = grid["missing"]
    assert cell["middleware"] == "cmpi" and cell["n_ranks"] == 2


def test_coverage_counts_damage_and_orphans(warm_store, tmp_path):
    damaged = tmp_path / "damaged"
    _split_store(warm_store, damaged, n_shards=1)
    (shard,) = sorted(damaged.glob("*.jsonl"))
    with shard.open("a") as f:
        f.write("{torn json\n")
    # a later shard holding every key orphans the first one
    (damaged / "zz-copy.jsonl").write_text(shard.read_text().rsplit("{torn", 1)[0])
    doc = run_analysis("coverage", damaged, save=False)
    assert not doc["ok"]
    assert doc["corrupt_lines"] == 1
    assert doc["orphaned_shards"] == [shard.name]


def test_rep203_verdict_policy():
    keep_no_data = rep203_verdict(
        {"fifo_disambiguations": 0, "manifests": 0, "manifests_with_counter": 0}
    )
    assert not keep_no_data["promote"] and "no data" in keep_no_data["reason"]
    keep_fired = rep203_verdict(
        {"fifo_disambiguations": 3, "manifests": 8, "manifests_with_counter": 8}
    )
    assert not keep_fired["promote"] and "legitimate" in keep_fired["reason"]
    keep_thin = rep203_verdict(
        {"fifo_disambiguations": 0, "manifests": 2, "manifests_with_counter": 2}
    )
    assert not keep_thin["promote"] and "insufficient" in keep_thin["reason"]
    promote = rep203_verdict(
        {"fifo_disambiguations": 0, "manifests": 6, "manifests_with_counter": 6}
    )
    assert promote["promote"]


def test_report_aggregates_rep203_from_manifests(warm_store):
    doc = run_analysis("report", warm_store, save=False)
    rep = doc["rep203"]
    # the module store ran real campaigns, so manifests exist; whether
    # the counter fired depends on the schedule — the aggregate just
    # has to be coherent
    assert rep["manifests"] >= 1
    assert 0 <= rep["manifests_with_counter"] <= rep["manifests"]
    assert rep["fifo_disambiguations"] >= 0


# -- rendering --------------------------------------------------------


def test_renderings_cover_every_analyzer(warm_store, tmp_path):
    for kind in ("report", "drift", "coverage"):
        doc = run_analysis(kind, warm_store, save=False)
        md = render(doc, "md")
        assert md.startswith(f"# campaign {kind}")
        html_text = render(doc, "html")
        assert html_text.startswith("<!DOCTYPE html>") and kind in html_text
        assert render(doc, "json").encode() == to_json_bytes(doc)
    with pytest.raises(ValueError, match="unknown format"):
        render(doc, "pdf")
