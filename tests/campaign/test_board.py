"""The ``Board`` protocol: ABC contract, URL factory, clock discipline.

These tests pin the API-redesign seams: any coordination backend is a
:class:`~repro.campaign.board.Board`, one ``--board`` URL selects it,
and the historical path-only call forms of the federation verbs keep
working through the factory.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    Board,
    HttpBoardClient,
    LeaseBoard,
    ResultStore,
    board_from_url,
    publish_campaign,
    work_campaign,
)
from repro.campaign.leases import Lease

from .conftest import tiny_engine, tiny_points


class CountingClock:
    """A fake clock that counts how often the board consults it."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t
        self.calls = 0

    def __call__(self) -> float:
        self.calls += 1
        return self.t


def _board_with_leases(tmp_path, clock, n=3) -> LeaseBoard:
    board = LeaseBoard(tmp_path / "board.json", now=clock)
    board.publish(
        {"schema": 1},
        [Lease(key=f"k{i}", label=f"p{i}", point={}) for i in range(n)],
    )
    return board


class TestBoardABC:
    def test_board_cannot_be_instantiated(self):
        with pytest.raises(TypeError, match="abstract"):
            Board()

    def test_both_backends_implement_the_protocol(self):
        assert issubclass(LeaseBoard, Board)
        assert issubclass(HttpBoardClient, Board)

    def test_counts_and_done_are_shared_derivations(self, tmp_path):
        clock = CountingClock()
        board = _board_with_leases(tmp_path, clock, n=2)
        assert board.counts() == {"pending": 2, "leased": 0, "done": 0}
        assert not board.done()
        for _ in range(2):
            lease = board.claim("w", ttl=60)
            board.complete(lease.key, "w")
        assert board.counts() == {"pending": 0, "leased": 0, "done": 2}
        assert board.done()

    def test_describe_names_the_backend(self, tmp_path):
        assert "file board" in LeaseBoard(tmp_path / "b.json").describe()
        assert "http board" in HttpBoardClient("http://localhost:1").describe()


class TestBoardFromUrl:
    def test_bare_path_is_a_file_board(self, tmp_path):
        board = board_from_url(tmp_path / "leases.json")
        assert isinstance(board, LeaseBoard)
        assert board.path == tmp_path / "leases.json"

    def test_file_scheme_strips_the_prefix(self, tmp_path):
        board = board_from_url(f"file:{tmp_path / 'leases.json'}")
        assert isinstance(board, LeaseBoard)
        assert board.path == tmp_path / "leases.json"

    def test_http_url_is_a_client(self):
        board = board_from_url("http://coordinator.example:8765")
        assert isinstance(board, HttpBoardClient)
        assert board.host == "coordinator.example"
        assert board.port == 8765

    def test_https_url_is_a_client(self):
        assert isinstance(board_from_url("https://host:1"), HttpBoardClient)

    def test_an_existing_board_passes_through_unchanged(self, tmp_path):
        board = LeaseBoard(tmp_path / "b.json")
        assert board_from_url(board) is board

    def test_now_is_injected_into_file_boards(self, tmp_path):
        clock = CountingClock()
        board = board_from_url(tmp_path / "b.json", now=clock)
        assert board._now is clock

    def test_empty_file_url_rejected(self):
        with pytest.raises(ValueError, match="empty path"):
            board_from_url("file:")

    def test_client_rejects_non_http_schemes(self):
        with pytest.raises(ValueError, match="scheme"):
            HttpBoardClient("ftp://host:1")


class TestClockDiscipline:
    """One ``now()`` read per mutation pass, taken under the board lock."""

    def test_claim_reads_the_clock_exactly_once(self, tmp_path):
        clock = CountingClock()
        board = _board_with_leases(tmp_path, clock)
        clock.calls = 0
        board.claim("w1", ttl=60)
        assert clock.calls == 1

    def test_heartbeat_reads_the_clock_exactly_once(self, tmp_path):
        clock = CountingClock()
        board = _board_with_leases(tmp_path, clock)
        lease = board.claim("w1", ttl=60)
        clock.calls = 0
        board.heartbeat(lease.key, "w1", ttl=60)
        assert clock.calls == 1

    def test_expiry_decisions_in_one_claim_share_one_instant(self, tmp_path):
        """Every candidate in a claim pass is judged at the same ``now``:
        with many leases expiring at the same deadline, one claim pass
        still reads the clock once, so no candidate can straddle it."""
        clock = CountingClock()
        board = _board_with_leases(tmp_path, clock, n=5)
        for _ in range(5):
            board.claim("doomed", ttl=60)
        clock.t += 61  # every lease expires
        clock.calls = 0
        reclaimed = board.claim("w2", ttl=60)
        assert reclaimed is not None and reclaimed.attempts == 1
        assert clock.calls == 1


class TestPathCallFormsStillWork:
    """Deprecation pin: the pre-``Board`` path-only signatures of the
    federation verbs must keep working (resolved through the factory),
    so existing scripts and the file-board fallback never break."""

    def test_publish_and_work_accept_a_bare_path(self, tmp_path):
        engine = tiny_engine()
        points = tiny_points(ranks=(1,))
        leases_path = tmp_path / "leases.json"

        summary = publish_campaign(engine, points, leases_path)  # Path form
        assert summary["pending"] == 1
        assert leases_path.exists()

        stats = work_campaign(str(leases_path), ResultStore(None), "w1")  # str form
        assert stats["executed"] == 1
        assert LeaseBoard(leases_path).done()

    def test_publish_accepts_a_board_instance(self, tmp_path):
        engine = tiny_engine()
        board = LeaseBoard(tmp_path / "leases.json")
        summary = publish_campaign(engine, tiny_points(ranks=(1,)), board)
        assert summary["pending"] == 1
        assert board.counts()["pending"] == 1
