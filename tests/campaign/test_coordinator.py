"""HTTP campaign coordinator: wire hygiene, lease semantics, parity.

The coordinator must be indistinguishable from the file board to
everything above it: same claim/heartbeat/complete/release/TTL
semantics (driven here by an injected fake clock shared with the
server), same failure story (worker crash costs one TTL, restart
reloads state), and — the acceptance criterion — a campaign run
through it merges bit-identically to the same campaign run off a file
board, with the read-only endpoints serving live JSON mid-run.
"""

from __future__ import annotations

import json
import socket
import threading
from urllib.parse import urlsplit

import pytest

from repro.campaign import (
    HttpBoardClient,
    LeaseBoard,
    LeaseBoardError,
    ResultStore,
    merge_into_store,
    publish_campaign,
    verify_stores_match,
    work_campaign,
)
from repro.campaign.coordinator import CoordinatorThread, HttpBoardError
from repro.campaign.leases import Lease

from .conftest import tiny_engine, tiny_points


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def coordinator(tmp_path, clock):
    with CoordinatorThread(tmp_path / "coordinator-board.json", now=clock) as coord:
        yield coord


@pytest.fixture()
def client(coordinator):
    with HttpBoardClient(coordinator.url) as cli:
        yield cli


def _tiny_leases(n=2):
    return [Lease(key=f"k{i}", label=f"p{i}", point={"i": i}) for i in range(n)]


def _raw_request(url: str, payload: bytes) -> bytes:
    """One raw exchange for protocol-hygiene tests (server closes after)."""
    split = urlsplit(url)
    with socket.create_connection((split.hostname, split.port), timeout=10) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = b""
        while True:
            data = sock.recv(65536)
            if not data:
                return chunks
            chunks += data


class TestLeaseSemanticsOverHttp:
    def test_publish_claim_complete_round_trip(self, client):
        client.publish({"schema": 1}, _tiny_leases())
        first = client.claim("w1", ttl=60)
        second = client.claim("w2", ttl=60)
        assert {first.key, second.key} == {"k0", "k1"}
        assert client.claim("w3", ttl=60) is None
        assert client.complete(first.key, "w1")
        assert client.complete(second.key, "w2")
        assert client.done()

    def test_ttl_reclaim_over_http(self, client, clock):
        """Worker crash mid-lease: the claim dies silently, the server's
        clock passes the deadline, and another worker reclaims with the
        attempt recorded — the file board's story, over HTTP."""
        client.publish({"schema": 1}, _tiny_leases(1))
        doomed = client.claim("worker-a", ttl=60)
        assert client.claim("worker-b", ttl=60) is None  # not stealable yet
        clock.advance(61)
        reclaimed = client.claim("worker-b", ttl=60)
        assert reclaimed.key == doomed.key
        assert reclaimed.worker == "worker-b"
        assert reclaimed.attempts == doomed.attempts + 1

    def test_heartbeat_keeps_a_lease_alive(self, client, clock):
        client.publish({"schema": 1}, _tiny_leases(1))
        lease = client.claim("w1", ttl=60)
        clock.advance(50)
        assert client.heartbeat(lease.key, "w1", ttl=60)
        clock.advance(50)  # would have expired without the heartbeat
        assert client.claim("w2", ttl=60) is None
        assert not client.heartbeat(lease.key, "w2", ttl=60)  # not w2's lease

    def test_late_completion_after_reclaim_is_rejected(self, client, clock):
        client.publish({"schema": 1}, _tiny_leases(1))
        lease = client.claim("w1", ttl=60)
        clock.advance(61)
        client.claim("w2", ttl=60)
        assert not client.complete(lease.key, "w1")  # w1 back from the dead

    def test_release_returns_the_point(self, client):
        client.publish({"schema": 1}, _tiny_leases(1))
        lease = client.claim("w1", ttl=60)
        client.release(lease.key, "w1")
        assert client.counts() == {"pending": 1, "leased": 0, "done": 0}
        assert client.claim("w2", ttl=60).key == lease.key

    def test_claim_before_any_publish_is_a_board_error(self, client):
        with pytest.raises(LeaseBoardError, match="no lease board"):
            client.claim("w1")

    def test_concurrent_claims_never_double_assign(self, coordinator):
        """Eight threads hammer ``claim`` concurrently; every key must be
        assigned exactly once (the event loop serializes mutations)."""
        with HttpBoardClient(coordinator.url) as seed:
            seed.publish({"schema": 1}, _tiny_leases(24))
        grabbed: list[tuple[str, str]] = []
        lock = threading.Lock()

        def grab(worker: str) -> None:
            with HttpBoardClient(coordinator.url) as cli:  # one conn per thread
                while (lease := cli.claim(worker, ttl=300)) is not None:
                    with lock:
                        grabbed.append((lease.key, worker))

        threads = [
            threading.Thread(target=grab, args=(f"w{i}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        keys = [key for key, _ in grabbed]
        assert sorted(keys) == sorted(f"k{i}" for i in range(24))
        assert len(keys) == len(set(keys)), "a key was double-assigned"

    def test_coordinator_restart_reloads_state(self, tmp_path, clock):
        """Kill the coordinator mid-campaign and start a new one on the
        same state file: held leases, done marks and attempt counts are
        all where they were."""
        state = tmp_path / "coordinator-board.json"
        with CoordinatorThread(state, now=clock) as coord:
            with HttpBoardClient(coord.url) as cli:
                cli.publish({"schema": 1}, _tiny_leases(3))
                held = cli.claim("worker-a", ttl=60)
                done = cli.claim("worker-a", ttl=60)
                cli.complete(done.key, "worker-a")
        # coordinator is gone; worker-a's claim on `held` dies with it
        clock.advance(61)
        with CoordinatorThread(state, now=clock) as coord:
            with HttpBoardClient(coord.url) as cli:
                assert cli.counts() == {"pending": 1, "leased": 1, "done": 1}
                reclaimed = cli.claim("worker-b", ttl=60)
                fresh = cli.claim("worker-b", ttl=60)
                assert {reclaimed.key, fresh.key} == {"k0", "k1", "k2"} - {done.key}
                assert {reclaimed.attempts, fresh.attempts} == {0, 1}
                reattempted = reclaimed if reclaimed.attempts else fresh
                assert reattempted.key == held.key


class TestReadOnlyEndpoints:
    def test_status_leases_metrics_runlog_serve_live_json(self, client, clock):
        """Mid-campaign (one lease held, one done, one pending) every
        read-only endpoint answers live, coherent JSON."""
        client.publish({"schema": 1}, _tiny_leases(3))
        held = client.claim("w1", ttl=60)
        done = client.claim("w1", ttl=60)
        client.complete(done.key, "w1")

        status = client.status()
        assert status["counts"] == {"pending": 1, "leased": 1, "done": 1}
        assert [f["key"] for f in status["in_flight"]] == [held.key]
        assert status["in_flight"][0]["worker"] == "w1"
        assert status["in_flight"][0]["seconds_left"] == pytest.approx(60.0)
        assert status["now"] == clock.t

        states = {lease.key: lease.state for lease in client.leases()}
        assert states[held.key] == "leased" and states[done.key] == "done"

        metrics = client.metrics()
        assert metrics["counters"]["coordinator.requests"]["total"] >= 4
        assert "route=claim" in metrics["counters"]["coordinator.requests"]["labels"]

        events = client.runlog_tail()
        assert [e["event"] for e in events if e["event"] != "coordinator_start"] \
            == ["publish", "claim", "claim", "complete"]
        claim_events = [e for e in events if e["event"] == "claim"]
        assert all(e["correlation"] for e in claim_events)  # audit joinable
        assert claim_events[0]["key"] == held.key

    def test_campaign_and_health_views(self, client):
        assert client.health()["ok"] is True
        client.publish({"schema": 1, "workload": "x"}, _tiny_leases(1))
        assert client.campaign() == {"schema": 1, "workload": "x"}

    def test_status_before_publish_is_empty_not_an_error(self, client):
        status = client.status()
        assert "counts" not in status and status["entries"] == 0

    def test_runlog_tail_limit(self, client):
        client.publish({"schema": 1}, _tiny_leases(1))
        client.claim("w1", ttl=60)
        assert len(client.runlog_tail(1)) == 1
        assert client.runlog_tail(1)[0]["event"] == "claim"


class TestWireHygiene:
    """Malformed traffic gets a clean 4xx JSON answer, never a hang or a
    dropped connection without a status, and never corrupts the board."""

    def _status_and_doc(self, response: bytes):
        head, _, body = response.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, json.loads(body)

    def test_torn_body_is_a_clean_400(self, coordinator, client):
        client.publish({"schema": 1}, _tiny_leases(1))
        payload = (
            b"POST /v1/claim HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 500\r\n\r\n" + b'{"worker": "w1"'
        )
        status, doc = self._status_and_doc(_raw_request(coordinator.url, payload))
        assert status == 400
        assert "torn request body" in doc["error"]
        assert client.counts()["leased"] == 0  # the half request mutated nothing

    def test_oversized_body_is_a_clean_413(self, coordinator):
        payload = (
            b"POST /v1/claim HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 99999999\r\n\r\n"
        )
        status, doc = self._status_and_doc(_raw_request(coordinator.url, payload))
        assert status == 413
        assert "byte limit" in doc["error"]

    def test_unparseable_json_is_a_400(self, coordinator):
        body = b"{not json"
        payload = (
            b"POST /v1/claim HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        status, doc = self._status_and_doc(_raw_request(coordinator.url, payload))
        assert status == 400
        assert "unparseable JSON" in doc["error"]

    def test_missing_fields_are_a_400(self, coordinator, client):
        client.publish({"schema": 1}, _tiny_leases(1))
        body = b'{"ttl": 60}'  # no worker
        payload = (
            b"POST /v1/claim HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        status, doc = self._status_and_doc(_raw_request(coordinator.url, payload))
        assert status == 400
        assert "'worker'" in doc["error"]

    def test_unknown_route_is_a_404(self, coordinator):
        payload = b"GET /v1/nonsense HTTP/1.1\r\nHost: x\r\n\r\n"
        status, doc = self._status_and_doc(_raw_request(coordinator.url, payload))
        assert status == 404
        assert "unknown endpoint" in doc["error"]

    def test_wrong_method_is_a_405(self, coordinator):
        payload = b"GET /v1/claim HTTP/1.1\r\nHost: x\r\n\r\n"
        status, doc = self._status_and_doc(_raw_request(coordinator.url, payload))
        assert status == 405

    def test_chunked_transfer_is_a_411(self, coordinator):
        payload = (
            b"POST /v1/claim HTTP/1.1\r\nHost: x\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        status, doc = self._status_and_doc(_raw_request(coordinator.url, payload))
        assert status == 411

    def test_garbage_request_line_is_a_400(self, coordinator):
        status, _ = self._status_and_doc(
            _raw_request(coordinator.url, b"GARBAGE\r\n\r\n")
        )
        assert status == 400

    def test_stalled_request_times_out_with_408(self, tmp_path):
        with CoordinatorThread(tmp_path / "b.json", read_timeout=0.2) as coord:
            payload = b"POST /v1/claim HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\n"
            split = urlsplit(coord.url)
            with socket.create_connection(
                (split.hostname, split.port), timeout=10
            ) as sock:
                sock.sendall(payload)  # ...and then never send the body
                response = b""
                while b"\r\n\r\n" not in response:
                    data = sock.recv(65536)
                    if not data:
                        break
                    response += data
            assert b"408" in response.split(b"\r\n", 1)[0]

    def test_unreachable_coordinator_raises_a_lease_board_error(self):
        with socket.socket() as probe:  # grab a port that is then closed
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = HttpBoardClient(f"http://127.0.0.1:{port}", retries=0, timeout=2)
        with pytest.raises(HttpBoardError, match="unreachable"):
            client.claim("w1")
        assert issubclass(HttpBoardError, LeaseBoardError)  # old handlers catch it


class TestEndToEndParity:
    def test_http_campaign_merges_bit_identical_to_file_campaign(
        self, tmp_path, clock
    ):
        """The acceptance criterion: the same two-worker campaign, once
        through the coordinator and once through the file board, merges
        into stores that match key-for-key with bit-identical records —
        while the coordinator's live endpoints stay coherent."""
        points = tiny_points(ranks=(1, 2))

        # leg 1: HTTP coordinator
        with CoordinatorThread(tmp_path / "coordinator-board.json", now=clock) as coord:
            publish_campaign(tiny_engine(), points, coord.url)
            with HttpBoardClient(coord.url) as cli:
                assert cli.counts()["pending"] == 2  # live view before work
            http_a = ResultStore(tmp_path / "http-a")
            http_b = ResultStore(tmp_path / "http-b")
            sa = work_campaign(coord.url, http_a, "http-wa", max_points=1)
            sb = work_campaign(coord.url, http_b, "http-wb")
            assert sa["executed"] == 1 and sb["executed"] == 1
            with HttpBoardClient(coord.url) as cli:
                assert cli.done()
                status = cli.status()
                assert status["counts"] == {"pending": 0, "leased": 0, "done": 2}
                keys = {e["key"] for e in cli.runlog_tail() if e["event"] == "complete"}
                assert len(keys) == 2
        merged_http = ResultStore(tmp_path / "merged-http")
        merge_into_store(merged_http, [http_a, http_b])

        # leg 2: the same campaign over the file board
        leases = tmp_path / "leases.json"
        publish_campaign(tiny_engine(), points, leases, now=clock)
        file_a = ResultStore(tmp_path / "file-a")
        file_b = ResultStore(tmp_path / "file-b")
        work_campaign(leases, file_a, "file-wa", max_points=1, now=clock)
        work_campaign(leases, file_b, "file-wb", now=clock)
        merged_file = ResultStore(tmp_path / "merged-file")
        merge_into_store(merged_file, [file_a, file_b])

        # key-for-key, bit-for-bit
        assert verify_stores_match(merged_http, merged_file) == []

    def test_worker_failure_over_http_releases_the_lease(
        self, coordinator, monkeypatch
    ):
        publish_campaign(tiny_engine(), tiny_points(ranks=(1,)), coordinator.url)
        from repro.campaign import federation

        def boom(*a, **kw):
            raise RuntimeError("synthetic point failure")

        monkeypatch.setattr(federation, "execute_point", boom)
        stats = work_campaign(coordinator.url, ResultStore(None), "w1", max_points=1)
        assert stats["failed"] == 1
        with HttpBoardClient(coordinator.url) as cli:
            assert cli.counts()["pending"] == 1  # released, not lost


class TestReportEndpoint:
    """GET /v1/report: the coordinator serves post-hoc analytics live."""

    def test_serves_the_latest_saved_report(self, tmp_path, clock):
        from repro.campaign import run_analysis
        from repro.campaign.analytics import to_json_bytes

        root = tmp_path / "cache"
        engine = tiny_engine(root)
        assert engine.run(tiny_points(ranks=(1, 2))).ok
        saved = run_analysis("report", root)  # publishes reports/report-latest.json

        with CoordinatorThread(
            tmp_path / "board.json", now=clock, report_dir=root / "reports"
        ) as coord:
            with HttpBoardClient(coord.url) as cli:
                served = cli.report()
                # exactly the canonical bytes run_analysis saved
                assert to_json_bytes(served) == to_json_bytes(saved)
                with pytest.raises(HttpBoardError, match="no 'drift' report"):
                    cli.report("drift")
                with pytest.raises(HttpBoardError, match="invalid report kind"):
                    cli.report("../escape")

    def test_404_without_reports_dir(self, coordinator):
        with HttpBoardClient(coordinator.url) as cli:
            with pytest.raises(HttpBoardError, match="without --reports"):
                cli.report()
