"""Campaign-layer fixtures: tiny engines over a persistent tmp store."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignEngine, ResultStore
from repro.core.design import DesignPoint
from repro.core.factors import FOCAL_POINT
from repro.parallel import MDRunConfig

#: Cheap run configuration every campaign test shares (2 MD steps over
#: the tiny solvated peptide — sub-second per point).
TINY_CONFIG = MDRunConfig(n_steps=2, dt=0.0004)


def tiny_engine(store_root=None, **kw) -> CampaignEngine:
    kw.setdefault("workload", "peptide-tiny")
    kw.setdefault("config", TINY_CONFIG)
    return CampaignEngine(store=ResultStore(store_root), **kw)


def tiny_points(ranks=(1, 2)) -> list[DesignPoint]:
    return [DesignPoint(config=FOCAL_POINT, n_ranks=p) for p in ranks]


@pytest.fixture()
def store_root(tmp_path):
    return tmp_path / "cache"
