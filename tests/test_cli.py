"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.network == "tcp-gige"
        assert args.ranks == 4
        assert args.cpus_per_node == 1

    def test_figures_flags(self):
        args = build_parser().parse_args(["figures", "--all", "--steps", "3"])
        assert args.all and args.steps == 3

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run"])
        assert args.campaign_command == "run"
        assert args.store == ".repro-cache"
        assert args.workload == "myoglobin-pme"
        assert args.design == "sweep"
        assert args.ranks == "1,2,4,8"
        assert args.workers == 0
        assert not args.sanitize_run


class TestCommands:
    def test_figures_listing(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "figure9" in out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figures", "figure42"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_workload_description(self, capsys):
        assert main(["workload"]) == 0
        out = capsys.readouterr().out
        assert "3552" in out
        assert "80 x 36 x 48" in out

    def test_bad_run_config_errors(self, capsys):
        assert main(["run", "--network", "infiniband"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_small_point(self, capsys):
        assert main(["run", "--ranks", "2", "--steps", "1", "--network", "myrinet"]) == 0
        out = capsys.readouterr().out
        assert "myrinet" in out
        assert "comp %" in out


class TestCampaignCommand:
    def _args(self, tmp_path, *extra):
        return [
            "--store", str(tmp_path / "cache"),
            "--workload", "peptide-tiny",
            "--steps", "2",
            *extra,
        ]

    def test_run_status_verify_gc_cycle(self, tmp_path, capsys):
        run_args = ["campaign", "run", *self._args(tmp_path, "--ranks", "1,2")]
        assert main(run_args) == 0
        out = capsys.readouterr().out
        assert "2 ran" in out and "0 failed" in out

        # warm re-run: everything is a cache hit
        assert main(run_args) == 0
        assert "2 hit, 0 ran" in capsys.readouterr().out

        assert main(["campaign", "status", "--store", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "campaign" in out  # the manifest summary line

        assert main(["campaign", "verify", *self._args(tmp_path, "--sample", "1")]) == 0
        assert "bit-identically: ok" in capsys.readouterr().out

        assert main(["campaign", "gc", "--store", str(tmp_path / "cache")]) == 0
        assert "kept 2" in capsys.readouterr().out

    def test_run_bad_ranks_errors(self, tmp_path, capsys):
        assert main(["campaign", "run", *self._args(tmp_path, "--ranks", "one,two")]) == 2
        assert "bad --ranks" in capsys.readouterr().err

    def test_run_unknown_workload_errors(self, tmp_path, capsys):
        args = [
            "campaign", "run", "--store", str(tmp_path / "cache"),
            "--workload", "nope", "--ranks", "1",
        ]
        assert main(args) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_failed_point_returns_nonzero(self, tmp_path, capsys):
        # 32 uni-CPU ranks exceed the 16-node cluster: the point fails
        args = ["campaign", "run", *self._args(tmp_path, "--ranks", "1,32", "--retries", "0")]
        assert main(args) == 1
        assert "1 failed" in capsys.readouterr().out


class TestBoardCommands:
    def test_coordinator_parser_defaults(self):
        args = build_parser().parse_args(["campaign", "coordinator"])
        assert args.campaign_command == "coordinator"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.state == "coordinator-board.json"

    def test_work_without_any_board_errors(self, tmp_path, capsys):
        code = main(["campaign", "work", "--store", str(tmp_path / "s")])
        assert code == 2
        assert "--board" in capsys.readouterr().err

    def test_serve_and_work_through_a_board_url(self, tmp_path, capsys):
        """The one-URL backend selection: ``--board file:PATH`` drives the
        same serve/work/merge cycle the old ``--leases PATH`` form did."""
        board = f"file:{tmp_path / 'leases.json'}"
        common = ["--workload", "peptide-tiny", "--steps", "2"]
        code = main([
            "campaign", "serve", "--store", str(tmp_path / "serve"),
            *common, "--ranks", "1", "--board", board,
        ])
        assert code == 0
        assert "published 1 leases" in capsys.readouterr().out

        code = main([
            "campaign", "work", "--store", str(tmp_path / "worker"),
            "--board", board, "--worker", "cli-w",
        ])
        assert code == 0
        assert "claimed 1 (1 executed" in capsys.readouterr().out

    def test_status_with_board_prints_board_view_without_watch(
        self, tmp_path, capsys
    ):
        board = f"file:{tmp_path / 'leases.json'}"
        code = main([
            "campaign", "serve", "--store", str(tmp_path / "serve"),
            "--workload", "peptide-tiny", "--steps", "2",
            "--ranks", "1,2", "--board", board,
        ])
        assert code == 0
        capsys.readouterr()

        code = main([
            "campaign", "status", "--store", str(tmp_path / "serve"),
            "--board", board,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0/2 done" in out and "2 pending" in out

    def test_work_against_an_unreachable_coordinator_errors_cleanly(
        self, tmp_path, capsys
    ):
        code = main([
            "campaign", "work", "--store", str(tmp_path / "s"),
            "--board", "http://127.0.0.1:1",  # nothing listens on port 1
        ])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err
