"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.network == "tcp-gige"
        assert args.ranks == 4
        assert args.cpus_per_node == 1

    def test_figures_flags(self):
        args = build_parser().parse_args(["figures", "--all", "--steps", "3"])
        assert args.all and args.steps == 3


class TestCommands:
    def test_figures_listing(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "figure9" in out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figures", "figure42"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_workload_description(self, capsys):
        assert main(["workload"]) == 0
        out = capsys.readouterr().out
        assert "3552" in out
        assert "80 x 36 x 48" in out

    def test_bad_run_config_errors(self, capsys):
        assert main(["run", "--network", "infiniband"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_small_point(self, capsys):
        assert main(["run", "--ranks", "2", "--steps", "1", "--network", "myrinet"]) == 0
        out = capsys.readouterr().out
        assert "myrinet" in out
        assert "comp %" in out
