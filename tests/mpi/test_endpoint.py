"""Point-to-point semantics: payload integrity, matching, timing split."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, myrinet_gm, tcp_gigabit_ethernet
from repro.mpi import MPIWorld
from repro.sim import SimulationError, Simulator


def _world(n=2, network=None, seed=1):
    sim = Simulator()
    spec = ClusterSpec(n_ranks=n, network=network or tcp_gigabit_ethernet(), seed=seed)
    return sim, MPIWorld(sim, spec)


def _run(sim, world, programs):
    procs = [sim.spawn(programs[r](world.endpoints[r]), name=f"r{r}") for r in range(len(programs))]
    sim.run()
    world.assert_drained()
    return [p.result for p in procs]


class TestBlockingSendRecv:
    def test_array_payload_delivered(self):
        sim, world = _world()
        data = np.arange(100, dtype=np.float64)

        def sender(ep):
            yield from ep.send(1, data, tag=7)

        def receiver(ep):
            got = yield from ep.recv(0, tag=7)
            return got

        results = _run(sim, world, [sender, receiver])
        assert np.array_equal(results[1], data)

    def test_payload_is_copied_at_send(self):
        sim, world = _world()
        data = np.zeros(10)

        def sender(ep):
            req = yield from ep.isend(1, data, tag=1)
            data[:] = 99.0  # mutate after send: receiver must not see this
            yield from req.wait()

        def receiver(ep):
            got = yield from ep.recv(0, tag=1)
            return got

        results = _run(sim, world, [sender, receiver])
        assert np.allclose(results[1], 0.0)

    def test_bytes_payload(self):
        sim, world = _world()

        def sender(ep):
            yield from ep.send(1, b"\x01\x02", tag=0)

        def receiver(ep):
            got = yield from ep.recv(0, tag=0)
            return got

        results = _run(sim, world, [sender, receiver])
        assert results[1] == b"\x01\x02"

    def test_tag_matching(self):
        sim, world = _world()

        def sender(ep):
            yield from ep.send(1, np.array([1.0]), tag=5)
            yield from ep.send(1, np.array([2.0]), tag=6)

        def receiver(ep):
            second = yield from ep.recv(0, tag=6)
            first = yield from ep.recv(0, tag=5)
            return first[0], second[0]

        results = _run(sim, world, [sender, receiver])
        assert results[1] == (1.0, 2.0)

    def test_fifo_per_tag(self):
        sim, world = _world()

        def sender(ep):
            for v in (1.0, 2.0, 3.0):
                yield from ep.send(1, np.array([v]), tag=0)

        def receiver(ep):
            got = []
            for _ in range(3):
                arr = yield from ep.recv(0, tag=0)
                got.append(arr[0])
            return got

        results = _run(sim, world, [sender, receiver])
        assert results[1] == [1.0, 2.0, 3.0]

    def test_sendrecv_exchanges(self):
        sim, world = _world()

        def prog(ep):
            other = yield from ep.sendrecv(
                1 - ep.rank, np.array([float(ep.rank)]), 1 - ep.rank, tag=3
            )
            return other[0]

        results = _run(sim, world, [prog, prog])
        assert results == [1.0, 0.0]


class TestValidation:
    def test_self_send_rejected(self):
        sim, world = _world()

        def prog(ep):
            yield from ep.send(0, b"x")

        sim.spawn(prog(world.endpoints[0]))
        with pytest.raises(ValueError):
            sim.run()

    def test_bad_rank_rejected(self):
        sim, world = _world()

        def prog(ep):
            yield from ep.send(5, b"x")

        sim.spawn(prog(world.endpoints[0]))
        with pytest.raises(ValueError):
            sim.run()

    def test_unsupported_payload_rejected(self):
        sim, world = _world()

        def prog(ep):
            yield from ep.send(1, [1, 2, 3])

        sim.spawn(prog(world.endpoints[0]))
        with pytest.raises(TypeError):
            sim.run()

    def test_missing_receiver_deadlocks(self):
        sim, world = _world()
        big = np.zeros(100_000)  # rendezvous: sender blocks forever

        def prog(ep):
            yield from ep.send(1, big)

        sim.spawn(prog(world.endpoints[0]), name="lonely")
        with pytest.raises(SimulationError):
            sim.run()

    def test_unmatched_recv_detected(self):
        sim, world = _world()

        def prog(ep):
            yield from ep.recv(1, tag=0)

        sim.spawn(prog(world.endpoints[0]), name="r0")
        with pytest.raises(SimulationError):
            sim.run()


class TestTiming:
    def test_compute_charges_comp(self):
        sim, world = _world()

        def prog(ep):
            yield from ep.compute(0.25)

        def idle(ep):
            yield from ep.compute(0.0)

        _run(sim, world, [prog, idle])
        totals = world.endpoints[0].timeline.grand_total()
        assert totals.comp == pytest.approx(0.25)
        assert totals.comm == 0.0

    def test_negative_compute_rejected(self):
        sim, world = _world()

        def prog(ep):
            yield from ep.compute(-1.0)

        sim.spawn(prog(world.endpoints[0]))
        with pytest.raises(ValueError):
            sim.run()

    def test_late_receiver_accrues_sync(self):
        sim, world = _world()
        payload = np.zeros(200_000)  # rendezvous

        def sender(ep):
            yield from ep.send(1, payload, tag=0)

        def receiver(ep):
            yield from ep.compute(0.5)  # make the sender wait
            got = yield from ep.recv(0, tag=0)
            return got.shape

        _run(sim, world, [sender, receiver])
        sender_totals = world.endpoints[0].timeline.grand_total()
        assert sender_totals.sync > 0.4  # waited ~0.5s for the receiver

    def test_early_receiver_accrues_sync(self):
        sim, world = _world()

        def sender(ep):
            yield from ep.compute(0.5)
            yield from ep.send(1, np.zeros(10), tag=0)

        def receiver(ep):
            got = yield from ep.recv(0, tag=0)
            return got.shape

        _run(sim, world, [sender, receiver])
        recv_totals = world.endpoints[1].timeline.grand_total()
        assert recv_totals.sync > 0.4

    def test_faster_network_faster_delivery(self):
        def run_on(network):
            sim, world = _world(network=network)
            payload = np.zeros(125_000)

            def sender(ep):
                yield from ep.send(1, payload, tag=0)

            def receiver(ep):
                yield from ep.recv(0, tag=0)

            _run(sim, world, [sender, receiver])
            return sim.now

        assert run_on(myrinet_gm()) < run_on(tcp_gigabit_ethernet())
