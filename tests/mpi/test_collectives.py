"""Collective algorithms: correctness for every operation and rank count."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, score_gigabit_ethernet
from repro.mpi import MPIWorld, collectives
from repro.sim import Simulator


def _run_collective(n_ranks, program, seed=1):
    sim = Simulator()
    world = MPIWorld(
        sim, ClusterSpec(n_ranks=n_ranks, network=score_gigabit_ethernet(), seed=seed)
    )
    procs = [
        sim.spawn(program(world.endpoints[r]), name=f"r{r}") for r in range(n_ranks)
    ]
    sim.run()
    world.assert_drained()
    return [p.result for p in procs], world


class TestBarrier:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_completes(self, p):
        def prog(ep):
            yield from collectives.barrier(ep)
            return ep.now

        results, _ = _run_collective(p, prog)
        assert len(results) == p

    def test_barrier_waits_for_slowest(self):
        def prog(ep):
            if ep.rank == 0:
                yield from ep.compute(1.0)
            yield from collectives.barrier(ep)
            return ep.now

        results, _ = _run_collective(4, prog)
        assert all(t >= 1.0 for t in results)

    def test_all_time_booked_as_sync(self):
        def prog(ep):
            yield from collectives.barrier(ep)

        _, world = _run_collective(4, prog)
        for ep in world.endpoints:
            totals = ep.timeline.grand_total()
            assert totals.comm == 0.0
            assert totals.sync > 0.0


class TestAllreduce:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_sum_power_of_two(self, p):
        def prog(ep):
            data = np.full(50, float(ep.rank + 1))
            out = yield from collectives.allreduce(ep, data)
            return out

        results, _ = _run_collective(p, prog)
        expect = sum(range(1, p + 1))
        for r in results:
            assert np.allclose(r, expect)

    @pytest.mark.parametrize("p", [3, 5, 6])
    def test_sum_general(self, p):
        def prog(ep):
            out = yield from collectives.allreduce(ep, np.array([float(ep.rank)]))
            return out[0]

        results, _ = _run_collective(p, prog)
        assert results == [sum(range(p))] * p

    def test_max_operation(self):
        def prog(ep):
            out = yield from collectives.allreduce(
                ep, np.array([float(ep.rank)]), op=np.maximum
            )
            return out[0]

        results, _ = _run_collective(4, prog)
        assert results == [3.0] * 4

    def test_input_not_mutated(self):
        def prog(ep):
            data = np.full(5, float(ep.rank))
            yield from collectives.allreduce(ep, data)  # noqa: REP102 — timing-only use
            return data.copy()

        results, _ = _run_collective(4, prog)
        for r, arr in enumerate(results):
            assert np.allclose(arr, r)


class TestAllgatherv:
    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_gathers_uneven_blocks(self, p):
        def prog(ep):
            block = np.full(ep.rank + 1, float(ep.rank))
            blocks = yield from collectives.allgatherv(ep, block)
            return blocks

        results, _ = _run_collective(p, prog)
        for blocks in results:
            assert len(blocks) == p
            for src, b in enumerate(blocks):
                assert len(b) == src + 1
                assert np.allclose(b, src)


class TestAlltoallv:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 3, 6])
    def test_personalized_exchange(self, p):
        def prog(ep):
            sends = [np.array([10.0 * ep.rank + d]) for d in range(p)]
            recv = yield from collectives.alltoallv(ep, sends)
            return recv

        results, _ = _run_collective(p, prog)
        for me, recv in enumerate(results):
            for src, block in enumerate(recv):
                assert block[0] == 10.0 * src + me

    def test_wrong_block_count_rejected(self):
        def prog(ep):
            yield from collectives.alltoallv(ep, [np.zeros(1)])  # noqa: REP102 — raises

        sim = Simulator()
        world = MPIWorld(sim, ClusterSpec(n_ranks=2, network=score_gigabit_ethernet()))
        for r in range(2):
            sim.spawn(prog(world.endpoints[r]))
        with pytest.raises(ValueError):
            sim.run()

    def test_matrix_transpose_use_case(self):
        """The FFT-transpose pattern: blocks reassemble a distributed matrix."""
        p = 4
        full = np.arange(16.0).reshape(4, 4)

        def prog(ep):
            my_row = full[ep.rank : ep.rank + 1, :]
            sends = [np.ascontiguousarray(my_row[:, c : c + 1]) for c in range(p)]
            recv = yield from collectives.alltoallv(ep, sends)
            return np.concatenate(recv, axis=0)  # my column

        results, _ = _run_collective(p, prog)
        for c, col in enumerate(results):
            assert np.allclose(col.ravel(), full[:, c])


class TestBcastReduce:
    @pytest.mark.parametrize("p", [1, 2, 4, 7, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bcast(self, p, root):
        if root >= p:
            pytest.skip("root outside communicator")

        def prog(ep):
            data = np.arange(20.0) if ep.rank == root else None
            out = yield from collectives.bcast(ep, data, root=root)
            return out

        results, _ = _run_collective(p, prog)
        for r in results:
            assert np.allclose(r, np.arange(20.0))

    @pytest.mark.parametrize("p", [1, 2, 4, 5, 8])
    @pytest.mark.parametrize("root", [0, 2])
    def test_reduce(self, p, root):
        if root >= p:
            pytest.skip("root outside communicator")

        def prog(ep):
            out = yield from collectives.reduce(
                ep, np.array([float(ep.rank)]), root=root
            )
            return out

        results, _ = _run_collective(p, prog)
        for rank, out in enumerate(results):
            if rank == root:
                assert out[0] == sum(range(p))
            else:
                assert out is None


@given(
    p=st.sampled_from([2, 3, 4, 8]),
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=8
    ),
    seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_allreduce_property(p, values, seed):
    arr = np.array(values)

    def prog(ep):
        out = yield from collectives.allreduce(ep, arr * (ep.rank + 1))
        return out

    results, _ = _run_collective(p, prog, seed=seed)
    expect = arr * sum(range(1, p + 1))
    for r in results:
        assert np.allclose(r, expect, atol=1e-9)
