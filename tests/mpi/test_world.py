"""World-level protocol invariants: eager vs rendezvous, causality, drain."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, score_gigabit_ethernet, tcp_gigabit_ethernet
from repro.mpi import MPIWorld
from repro.sim import Simulator


def _pingpong(network, nbytes, seed=1):
    """One message each way; returns (sim_time, world)."""
    sim = Simulator()
    world = MPIWorld(sim, ClusterSpec(n_ranks=2, network=network, seed=seed))
    payload = np.zeros(max(1, nbytes // 8))

    def rank0(ep):
        yield from ep.send(1, payload, tag=0)
        yield from ep.recv(1, tag=1)

    def rank1(ep):
        yield from ep.recv(0, tag=0)
        yield from ep.send(0, payload, tag=1)

    sim.spawn(rank0(world.endpoints[0]), name="r0")
    sim.spawn(rank1(world.endpoints[1]), name="r1")
    total = sim.run()
    world.assert_drained()
    return total, world


class TestProtocols:
    def test_eager_sender_does_not_block(self):
        """An eager sender finishes even while the receiver computes."""
        net = tcp_gigabit_ethernet()
        sim = Simulator()
        world = MPIWorld(sim, ClusterSpec(n_ranks=2, network=net, seed=1))
        done_at = {}

        def sender(ep):
            yield from ep.send(1, np.zeros(10), tag=0)  # tiny: eager
            done_at["sender"] = ep.now

        def receiver(ep):
            yield from ep.compute(1.0)
            yield from ep.recv(0, tag=0)

        sim.spawn(sender(world.endpoints[0]))
        sim.spawn(receiver(world.endpoints[1]))
        sim.run()
        assert done_at["sender"] < 0.1

    def test_rendezvous_sender_blocks(self):
        net = tcp_gigabit_ethernet()
        sim = Simulator()
        world = MPIWorld(sim, ClusterSpec(n_ranks=2, network=net, seed=1))
        done_at = {}

        def sender(ep):
            yield from ep.send(1, np.zeros(100_000), tag=0)  # > eager threshold
            done_at["sender"] = ep.now

        def receiver(ep):
            yield from ep.compute(1.0)
            yield from ep.recv(0, tag=0)

        sim.spawn(sender(world.endpoints[0]))
        sim.spawn(receiver(world.endpoints[1]))
        sim.run()
        assert done_at["sender"] > 1.0

    def test_threshold_boundary_behaviour(self):
        net = dataclasses.replace(tcp_gigabit_ethernet(), eager_threshold=800)
        sim = Simulator()
        world = MPIWorld(sim, ClusterSpec(n_ranks=2, network=net, seed=1))
        done = {}

        def sender(ep):
            yield from ep.send(1, np.zeros(100), tag=0)  # exactly 800 B: eager
            done["eager"] = ep.now
            yield from ep.send(1, np.zeros(101), tag=1)  # 808 B: rendezvous
            done["rendezvous"] = ep.now

        def receiver(ep):
            yield from ep.compute(0.5)
            yield from ep.recv(0, tag=0)
            yield from ep.recv(0, tag=1)

        sim.spawn(sender(world.endpoints[0]))
        sim.spawn(receiver(world.endpoints[1]))
        sim.run()
        assert done["eager"] < 0.1
        assert done["rendezvous"] > 0.5


class TestCausality:
    @given(
        nbytes=st.integers(1, 500_000),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_time_at_least_two_latencies(self, nbytes, seed):
        net = score_gigabit_ethernet()
        total, _ = _pingpong(net, nbytes, seed)
        assert total >= 2 * net.latency

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_bigger_messages_never_faster(self, seed):
        net = score_gigabit_ethernet()
        small, _ = _pingpong(net, 1_000, seed)
        big, _ = _pingpong(net, 1_000_000, seed)
        assert big > small

    def test_transfer_records_have_positive_duration(self):
        _, world = _pingpong(tcp_gigabit_ethernet(), 50_000)
        assert world.state.transfers
        for rec in world.state.transfers:
            assert rec.end > rec.start
            assert rec.nbytes > 0

    def test_timeline_total_never_exceeds_sim_time(self):
        total, world = _pingpong(tcp_gigabit_ethernet(), 200_000)
        for ep in world.endpoints:
            assert ep.timeline.total_seconds() <= total + 1e-12


class TestDrainChecks:
    def test_assert_drained_raises_on_leftovers(self):
        sim = Simulator()
        world = MPIWorld(sim, ClusterSpec(n_ranks=2, network=tcp_gigabit_ethernet()))

        def sender(ep):
            yield from ep.send(1, np.zeros(4), tag=9)  # eager, never received

        sim.spawn(sender(world.endpoints[0]))
        sim.run()
        with pytest.raises(AssertionError, match="unmatched"):
            world.assert_drained()
