"""Acceptance: warm-cache figure regeneration performs zero MD work.

The figure drivers accept any :class:`CharacterizationRunner`; backing
one with a persistent store and regenerating the same figure from a
fresh runner (fresh process simulated by clearing the in-process memo)
must recall every design point from disk without a single non-bonded
force evaluation.
"""

from repro.campaign import ResultStore
from repro.campaign.workloads import build_workload
from repro.core import CharacterizationRunner
from repro.core import runner as runner_mod
from repro.experiments import figure3, figure4
from repro.instrument import FORCE_EVALUATIONS
from repro.parallel import MDRunConfig


def _store_backed_runner(store_root):
    system, positions = build_workload("peptide-tiny")
    return CharacterizationRunner(
        system=system,
        positions=positions,
        config=MDRunConfig(n_steps=2, dt=0.0004),
        store=ResultStore(store_root),
    )


class TestWarmFigureRegeneration:
    def test_second_figure_run_does_zero_md_work(self, tmp_path):
        cold = _store_backed_runner(tmp_path / "cache")
        first = figure3(cold)
        assert first.records
        cold.store.close()

        # fresh runner + reopened store; drop the in-process result memo
        # so only the on-disk cache can answer
        runner_mod._RUN_MEMO.clear()
        warm = _store_backed_runner(tmp_path / "cache")
        before = FORCE_EVALUATIONS.snapshot()
        second = figure3(warm)
        assert FORCE_EVALUATIONS.delta(before) == 0
        assert second.series == first.series

    def test_figures_sharing_points_share_the_cache(self, tmp_path):
        """Figure 4 plots the same reference-case sweep figure 3 runs:
        with a shared store the second figure is free."""
        runner = _store_backed_runner(tmp_path / "cache")
        figure3(runner)
        runner_mod._RUN_MEMO.clear()
        before = FORCE_EVALUATIONS.snapshot()
        figure4(runner)
        assert FORCE_EVALUATIONS.delta(before) == 0
