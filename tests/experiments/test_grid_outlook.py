"""Grid-outlook driver structure (small workload)."""

import pytest

from repro.core import CharacterizationRunner
from repro.experiments import grid_outlook
from repro.parallel import MDRunConfig


@pytest.fixture(scope="module")
def outlook(peptide_system):
    system, pos = peptide_system
    runner = CharacterizationRunner(
        system=system, positions=pos, config=MDRunConfig(n_steps=1, dt=0.0004)
    )
    return grid_outlook(runner)


class TestGridOutlook:
    def test_series_shape(self, outlook):
        assert outlook.series["p"] == [2, 4]
        assert len(outlook.series["grid"]) == 2
        assert len(outlook.series["slowdown"]) == 2

    def test_grid_slower_than_local(self, outlook):
        for s in outlook.series["slowdown"]:
            assert s > 1.0

    def test_grid_defeats_parallelism(self, outlook):
        """Over the wide area, the parallel run loses to just running
        serially on one node — the paper's 'particular challenge'."""
        assert min(outlook.series["grid"]) > outlook.series["serial"]

    def test_report_renders(self, outlook):
        assert "wide-area" in outlook.report
