"""Shared figure runner: the full 3552-atom workload, 10-step runs.

One :class:`CharacterizationRunner` is shared by every experiment test so
each design point is simulated exactly once per session.
"""

import pytest

from repro.experiments import default_runner


@pytest.fixture(scope="session")
def figure_runner():
    return default_runner(n_steps=10)
