"""Every qualitative claim of the paper's evaluation, asserted.

These integration tests run the full benchmark workload (myoglobin +
CO + sulfate + 337 waters, 3552 atoms, 10 MD steps) on the simulated
platforms and check the *shape* results the paper reports: who wins, by
roughly what factor, and where the pathologies appear.  Absolute numbers
are calibrated, not measured — see EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fast_ethernet_comparison,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)


@pytest.fixture(scope="module")
def fig3(figure_runner):
    return figure3(figure_runner)


@pytest.fixture(scope="module")
def fig4(figure_runner):
    return figure4(figure_runner)


@pytest.fixture(scope="module")
def fig5(figure_runner):
    return figure5(figure_runner)


@pytest.fixture(scope="module")
def fig7(figure_runner):
    return figure7(figure_runner)


@pytest.fixture(scope="module")
def fig8(figure_runner):
    return figure8(figure_runner)


@pytest.fixture(scope="module")
def fig9(figure_runner):
    return figure9(figure_runner)


class TestFigure3:
    """Reference case: wall times of classic vs PME."""

    def test_serial_total_near_paper(self, fig3):
        # the paper's chart: ~6.2 s for 10 steps on one processor
        assert fig3.series["total"][0] == pytest.approx(6.2, rel=0.10)

    def test_serial_pme_slightly_under_half(self, fig3):
        frac = fig3.series["pme"][0] / fig3.series["total"][0]
        assert 0.40 < frac < 0.50

    def test_pme_at_two_exceeds_serial_pme(self, fig3):
        """Sec 3.2: 'for two processors, the execution time of the PME
        calculation is actually larger than for one processor'."""
        assert fig3.series["pme"][1] >= fig3.series["pme"][0]

    def test_parallel_pme_share_grows(self, fig3):
        """'In the parallel version, the PME time is almost two thirds of
        the total calculation time.'"""
        share_p2 = fig3.series["pme"][1] / fig3.series["total"][1]
        assert share_p2 > 0.55

    def test_classic_time_decreases(self, fig3):
        classic = fig3.series["classic"]
        assert classic[1] < classic[0]
        assert classic[2] < classic[1]

    def test_scaling_stalls_by_eight(self, fig3):
        """TCP/IP scaling flattens: p=8 is nowhere near 8x faster."""
        speedup = fig3.series["total"][0] / fig3.series["total"][3]
        assert speedup < 4.0


class TestFigure4:
    """Reference-case breakdowns."""

    def test_serial_is_pure_computation(self, fig4):
        assert fig4.series["classic_overhead"][0] == 0.0
        assert fig4.series["pme_overhead"][0] == 0.0

    def test_classic_overhead_under_ten_percent_at_two(self, fig4):
        assert fig4.series["classic_overhead"][1] < 0.10

    def test_classic_overhead_over_half_at_eight(self, fig4):
        """'increasing to over 60% for eight processors' — we accept > 50%."""
        assert fig4.series["classic_overhead"][3] > 0.50

    def test_pme_overhead_about_half_at_two(self, fig4):
        """'slightly more than 50% for two processors'."""
        assert 0.40 < fig4.series["pme_overhead"][1] < 0.65

    def test_pme_overhead_over_75_percent_at_eight(self, fig4):
        assert fig4.series["pme_overhead"][3] > 0.70

    def test_overheads_monotone_in_ranks(self, fig4):
        for key in ("classic_overhead", "pme_overhead"):
            series = fig4.series[key]
            assert series == sorted(series)


class TestFigure5:
    """Network comparison: better networks scale better."""

    def test_myrinet_fastest_at_eight(self, fig5):
        p8 = {net: fig5.series[net][3] for net in ("tcp-gige", "score-gige", "myrinet")}
        assert p8["myrinet"] < p8["score-gige"] < p8["tcp-gige"]

    def test_serial_times_identical(self, fig5):
        """p=1 involves no network: all three levels must agree."""
        t1 = [fig5.series[net][0] for net in ("tcp-gige", "score-gige", "myrinet")]
        assert max(t1) - min(t1) < 1e-9

    def test_score_improves_tcp_substantially_at_eight(self, fig5):
        """The paper's headline: better *software* on the same wire wins."""
        assert fig5.series["tcp-gige"][3] / fig5.series["score-gige"][3] > 1.5

    def test_good_networks_keep_scaling(self, fig5):
        for net in ("score-gige", "myrinet"):
            series = fig5.series[net]
            assert series[3] < series[2] < series[1] < series[0]
            speedup = series[0] / series[3]
            assert speedup > 3.5


class TestFigure6:
    """Breakdowns per network: overhead ordering."""

    @pytest.fixture(scope="class")
    def fig6(self, figure_runner):
        return figure6(figure_runner)

    @pytest.mark.parametrize("component", ["classic", "pme"])
    def test_overhead_ordering_at_eight(self, fig6, component):
        o = {
            net: fig6.series[f"{net}_{component}"][3]
            for net in ("tcp-gige", "score-gige", "myrinet")
        }
        assert o["myrinet"] < o["score-gige"] < o["tcp-gige"]

    def test_pme_needs_better_networks(self, fig6):
        """PME overhead exceeds classic overhead on every network (the
        paper: 'PME increases the dependency on the better networks')."""
        for net in ("tcp-gige", "score-gige", "myrinet"):
            assert fig6.series[f"{net}_pme"][1] > fig6.series[f"{net}_classic"][1]


class TestFigure7:
    """Communication speeds: rates and variability."""

    def test_myrinet_over_100_mbs(self, fig7):
        assert all(m > 100.0 for m in fig7.series["myrinet"]["mean"])

    def test_tcp_low_rate(self, fig7):
        assert all(m < 45.0 for m in fig7.series["tcp-gige"]["mean"])

    def test_rate_ordering(self, fig7):
        for i in range(3):  # p = 2, 4, 8
            assert (
                fig7.series["tcp-gige"]["mean"][i]
                < fig7.series["score-gige"]["mean"][i]
                < fig7.series["myrinet"]["mean"][i]
            )

    def test_tcp_variability_grows_abruptly(self, fig7):
        """'the high variability of MPI transfers over TCP/IP starts
        abruptly with four processors and gets worse with eight'."""
        tcp = fig7.series["tcp-gige"]
        spread = [tcp["max"][i] - tcp["min"][i] for i in range(3)]
        assert spread[1] > 1.5 * spread[0]
        assert spread[2] >= spread[1] * 0.9  # stays bad or worsens

    def test_score_stable(self, fig7):
        """'SCore provides stable and higher communication rate'."""
        score = fig7.series["score-gige"]
        tcp = fig7.series["tcp-gige"]
        for i in range(3):
            rel_spread_score = (score["max"][i] - score["min"][i]) / score["mean"][i]
            rel_spread_tcp = (tcp["max"][i] - tcp["min"][i]) / tcp["mean"][i]
            assert rel_spread_score < rel_spread_tcp

    def test_myrinet_stable(self, fig7):
        myr = fig7.series["myrinet"]
        for i in range(3):
            assert (myr["max"][i] - myr["min"][i]) / myr["mean"][i] < 0.6


class TestFigure8:
    """Middleware: CMPI destroys scalability on TCP/IP."""

    def test_cmpi_no_faster_than_mpi(self, fig8):
        for i in range(4):
            assert fig8.series["cmpi"]["total"][i] >= 0.95 * fig8.series["mpi"]["total"][i]

    def test_cmpi_blows_up_from_four_to_eight(self, fig8):
        """'With the increase from four to eight, both parts of the
        execution time are increasing instead of falling when CMPI is
        used.'"""
        cmpi = fig8.series["cmpi"]
        assert cmpi["classic"][3] > cmpi["classic"][2]
        assert cmpi["pme"][3] > cmpi["pme"][2]
        assert cmpi["total"][3] > cmpi["total"][2]

    def test_mpi_does_not_blow_up(self, fig8):
        mpi = fig8.series["mpi"]
        assert mpi["total"][3] < 1.2 * mpi["total"][2]

    def test_sync_explosion_is_the_cause(self, fig8):
        """Fig 8b: the slowdown is in the synchronization operations."""
        cmpi_sync = fig8.series["cmpi"]["sync"]
        assert cmpi_sync[3] > 3.0 * cmpi_sync[2]
        assert cmpi_sync[3] > fig8.series["mpi"]["sync"][3] * 3.0

    def test_identical_at_one_processor(self, fig8):
        assert fig8.series["cmpi"]["total"][0] == pytest.approx(
            fig8.series["mpi"]["total"][0], rel=1e-9
        )


class TestFigure9:
    """Dual-processor nodes: collapse on TCP/IP, fine on Myrinet."""

    def test_tcp_dual_times_increase_with_nodes(self, fig9):
        """'both the classic energy time and the PME energy time does not
        decrease but increases with the number of nodes in the dual
        processor case' (TCP/IP)."""
        dual = fig9.series["tcp-gige_dual"]
        assert dual[3] > dual[1]  # p=8 (4 nodes) worse than p=2 (1 node)
        assert dual[3] > dual[2]

    def test_tcp_dual_worse_than_uni_at_eight(self, fig9):
        assert fig9.series["tcp-gige_dual"][3] > fig9.series["tcp-gige_uni"][3]

    def test_myrinet_dual_keeps_scaling(self, fig9):
        """'This is not the case for network technologies such as SCore
        and Myrinet.'"""
        dual = fig9.series["myrinet_dual"]
        assert dual[3] < dual[2] < dual[1]

    def test_myrinet_dual_close_to_uni(self, fig9):
        """Shared-memory drivers handle two ranks per node gracefully."""
        assert fig9.series["myrinet_dual"][3] < 1.35 * fig9.series["myrinet_uni"][3]


class TestFastEthernetExtension:
    def test_fast_ethernet_not_much_worse(self, figure_runner):
        """Sec 4.1: 'Gigabit Ethernet did not perform much better than
        Fast Ethernet' under TCP/IP — overheads, not wire speed, dominate."""
        result = fast_ethernet_comparison(figure_runner)
        gige = result.series["tcp-gige"]
        fast = result.series["tcp-fast-ethernet"]
        # Fast Ethernet is slower, but by far less than the 10x wire ratio
        for i in (1, 2, 3):
            assert fast[i] / gige[i] < 3.0
        assert fast[3] >= gige[3] * 0.95
