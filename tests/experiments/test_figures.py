"""Figure drivers: structure of the results (fast, small workload)."""

import pytest

from repro.core import CharacterizationRunner
from repro.experiments import ALL_FIGURES, extrapolation, figure3, figure7, figure9
from repro.parallel import MDRunConfig


@pytest.fixture(scope="module")
def small_runner(peptide_system):
    system, pos = peptide_system
    return CharacterizationRunner(
        system=system, positions=pos, config=MDRunConfig(n_steps=2, dt=0.0004)
    )


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(ALL_FIGURES) == {
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "fast_ethernet",
            "extrapolation",
            "grid_outlook",
        }


class TestDriverStructure:
    def test_figure3_series(self, small_runner):
        res = figure3(small_runner)
        assert res.series["p"] == [1, 2, 4, 8]
        assert len(res.series["classic"]) == 4
        assert "Figure 3" in res.report
        assert res.figure == "figure3"

    def test_figure7_series(self, small_runner):
        res = figure7(small_runner)
        for net in ("tcp-gige", "score-gige", "myrinet"):
            assert len(res.series[net]["mean"]) == 3
            assert all(
                res.series[net]["min"][i] <= res.series[net]["mean"][i] <= res.series[net]["max"][i]
                for i in range(3)
            )

    def test_figure9_series(self, small_runner):
        res = figure9(small_runner)
        assert set(res.series) == {
            "tcp-gige_uni",
            "tcp-gige_dual",
            "myrinet_uni",
            "myrinet_dual",
        }

    def test_by_platform_grouping(self, small_runner):
        res = figure9(small_runner)
        groups = res.by_platform()
        assert len(groups) == 4
        for recs in groups.values():
            assert [r.n_ranks for r in recs] == [1, 2, 4, 8]

    def test_extrapolation_reaches_sixteen(self, small_runner):
        res = extrapolation(small_runner)
        assert res.series["p"] == [1, 2, 4, 8, 16]
        for net in ("tcp-gige", "score-gige", "myrinet"):
            assert len(res.series[net]) == 5

    def test_all_reports_render(self, small_runner):
        for name, driver in ALL_FIGURES.items():
            res = driver(small_runner)
            assert isinstance(res.report, str) and len(res.report) > 0
            assert res.records, name

    def test_runner_cache_shared_across_figures(self, small_runner):
        """Figure 4 reuses Figure 3's runs (same design points)."""
        n_before = len(small_runner.store)
        figure3(small_runner)
        n_mid = len(small_runner.store)
        from repro.experiments import figure4

        figure4(small_runner)
        assert len(small_runner.store) == n_mid
        assert n_mid >= n_before
