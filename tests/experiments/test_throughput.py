"""Task- vs data-parallel throughput study (small workload)."""

import pytest

from repro.core import CharacterizationRunner
from repro.experiments import throughput_study
from repro.parallel import MDRunConfig


@pytest.fixture(scope="module")
def study(peptide_system):
    system, pos = peptide_system
    runner = CharacterizationRunner(
        system=system, positions=pos, config=MDRunConfig(n_steps=2, dt=0.0004)
    )
    return throughput_study(runner, n_jobs=32, networks=("tcp-gige", "myrinet"))


class TestThroughputStudy:
    def test_plan_count(self, study):
        assert len(study.plans) == 2 * 4  # networks x processor levels

    def test_concurrency_bounds(self, study):
        for plan in study.plans:
            assert plan.concurrent_jobs == max(1, 16 // plan.ranks_per_job)

    def test_makespan_consistency(self, study):
        import math

        for plan in study.plans:
            waves = math.ceil(32 / plan.concurrent_jobs)
            assert plan.makespan == pytest.approx(waves * plan.job_time)

    def test_turnaround_best_with_most_ranks_on_good_network(self, study):
        best = study.best_turnaround("myrinet")
        assert best.ranks_per_job == 8

    def test_task_parallelism_often_wins_makespan_on_tcp(self, study):
        """With many queued jobs and poor networks, serial task-parallel
        execution is competitive — the paper's observation about how
        clusters were actually used."""
        serial = [p for p in study.plans if p.network == "tcp-gige" and p.ranks_per_job == 1][0]
        parallel8 = [p for p in study.plans if p.network == "tcp-gige" and p.ranks_per_job == 8][0]
        assert serial.makespan <= parallel8.makespan * 1.5

    def test_report_renders(self, study):
        assert "Task vs data parallelism" in study.report
        assert "jobs/hour" in study.report

    def test_validation(self, peptide_system):
        system, pos = peptide_system
        runner = CharacterizationRunner(
            system=system, positions=pos, config=MDRunConfig(n_steps=1, dt=0.0004)
        )
        with pytest.raises(ValueError):
            throughput_study(runner, n_jobs=0)

    def test_unknown_network_raises(self, study):
        with pytest.raises(ValueError):
            study.best_makespan("infiniband")
