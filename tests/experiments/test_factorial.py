"""Full-factorial driver on a small workload (structure + main effects)."""

import pytest

from repro.core import CharacterizationRunner
from repro.experiments import main_effects, run_full_factorial
from repro.parallel import MDRunConfig


@pytest.fixture(scope="module")
def factorial(peptide_system):
    system, pos = peptide_system
    runner = CharacterizationRunner(
        system=system, positions=pos, config=MDRunConfig(n_steps=1, dt=0.0004)
    )
    return run_full_factorial(runner, processor_levels=(1, 4))


class TestFullFactorial:
    def test_record_count(self, factorial):
        assert len(factorial.records) == 24  # 12 cases x 2 processor counts

    def test_all_cases_present(self, factorial):
        cases = {
            (r.network, r.middleware, r.cpus_per_node) for r in factorial.records
        }
        assert len(cases) == 12

    def test_effects_computed(self, factorial):
        assert set(factorial.effects) == {"network", "middleware", "cpus_per_node"}
        assert all(v >= 1.0 for v in factorial.effects.values())

    def test_report_renders(self, factorial):
        assert "Main effects" in factorial.report
        assert "Full factorial" in factorial.report


class TestMainEffects:
    def test_requires_matching_rank_count(self, factorial):
        with pytest.raises(ValueError):
            main_effects(factorial.records, n_ranks=64)

    def test_ratio_at_least_one(self, factorial):
        effects = main_effects(factorial.records, n_ranks=4)
        assert all(v >= 1.0 for v in effects.values())
