"""CMPI middleware: correctness + the documented pathologies."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
from repro.cmpi import CMPIMiddleware
from repro.mpi import MPIMiddleware, MPIWorld
from repro.sim import Simulator


def _run(n_ranks, program_factory, network=None, seed=1):
    sim = Simulator()
    world = MPIWorld(
        sim,
        ClusterSpec(n_ranks=n_ranks, network=network or tcp_gigabit_ethernet(), seed=seed),
    )
    procs = [
        sim.spawn(program_factory(world.endpoints[r]), name=f"r{r}")
        for r in range(n_ranks)
    ]
    sim.run()
    world.assert_drained()
    return [p.result for p in procs], world


MW = CMPIMiddleware()


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 5, 8])
    def test_allreduce(self, p):
        def prog(ep):
            out = yield from MW.allreduce(ep, np.full(30, float(ep.rank)))
            return out

        results, _ = _run(p, prog)
        for r in results:
            assert np.allclose(r, sum(range(p)))

    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_allgatherv(self, p):
        def prog(ep):
            blocks = yield from MW.allgatherv(ep, np.full(2 + ep.rank, float(ep.rank)))
            return blocks

        results, _ = _run(p, prog)
        for blocks in results:
            for src, b in enumerate(blocks):
                assert np.allclose(b, src)
                assert len(b) == 2 + src

    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_alltoallv(self, p):
        def prog(ep):
            sends = [np.array([100.0 * ep.rank + d]) for d in range(p)]
            recv = yield from MW.alltoallv(ep, sends)
            return recv

        results, _ = _run(p, prog)
        for me, recv in enumerate(results):
            for src, block in enumerate(recv):
                assert block[0] == 100.0 * src + me

    def test_alltoallv_validates_block_count(self):
        def prog(ep):
            yield from MW.alltoallv(ep, [np.zeros(1)])  # noqa: REP102 — raises before returning

        with pytest.raises(ValueError):
            _run(2, prog)

    @pytest.mark.parametrize("p", [2, 4, 5])
    def test_barrier_synchronizes(self, p):
        def prog(ep):
            if ep.rank == 0:
                yield from ep.compute(0.7)
            yield from MW.barrier(ep)
            return ep.now

        results, _ = _run(p, prog)
        assert all(t >= 0.7 for t in results)


class TestPathology:
    def test_sync_booked_as_sync(self):
        def prog(ep):
            yield from MW.sync(ep)

        _, world = _run(4, prog)
        for ep in world.endpoints:
            totals = ep.timeline.grand_total()
            assert totals.sync > 0

    def test_sync_rounds_scale_linearly(self):
        """p-1 rounds: sync cost grows ~linearly with p (vs log for MPI)."""

        def cost(p):
            def prog(ep):
                yield from MW.sync(ep)

            _, world = _run(p, prog)
            return max(ep.timeline.grand_total().total for ep in world.endpoints)

        c2, c8 = cost(2), cost(8)
        assert c8 > 3.0 * c2

    def test_cmpi_allreduce_slower_than_mpi_on_tcp(self):
        """The Figure 8 effect at the operation level."""
        mpi = MPIMiddleware()

        def total_time(mw, p):
            def prog(ep):
                for _ in range(3):
                    _ = yield from mw.allreduce(ep, np.zeros(11000))
                return None

            _, world = _run(p, prog, seed=5)
            return max(ep.timeline.grand_total().total for ep in world.endpoints)

        assert total_time(MW, 8) > total_time(mpi, 8)

    def test_cmpi_message_count_quadratic(self):
        """CMPI allreduce sends (p-1) full vectors per rank: p(p-1) messages
        plus 2 p (p-1) sync messages; MPI recursive doubling sends p log p."""

        def n_transfers(mw, p):
            def prog(ep):
                _ = yield from mw.allreduce(ep, np.zeros(1000))
                return None

            _, world = _run(p, prog, seed=3)
            return len(world.state.transfers)

        p = 8
        cmpi_count = n_transfers(MW, p)
        mpi_count = n_transfers(MPIMiddleware(), p)
        assert cmpi_count > 2 * mpi_count

    def test_name(self):
        assert MW.name == "cmpi"
        assert MPIMiddleware().name == "mpi"
