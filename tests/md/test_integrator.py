"""Velocity Verlet: determinism, momentum and energy conservation."""

import numpy as np
import pytest

from repro.md import (
    CutoffScheme,
    MDSystem,
    VelocityVerlet,
    default_forcefield,
    kinetic_energy,
    maxwell_boltzmann_velocities,
)
from repro.md.units import BOLTZMANN_KCAL
from repro.workloads import build_water_box


@pytest.fixture(scope="module")
def water_md():
    topo, pos, box = build_water_box(n_side=3)
    system = MDSystem(topo, default_forcefield(), box, CutoffScheme(r_cut=4.0, skin=1.2))
    return system, pos


class TestVelocities:
    def test_com_momentum_removed(self):
        rng = np.random.default_rng(0)
        masses = np.array([16.0, 1.0, 1.0] * 30)
        v = maxwell_boltzmann_velocities(masses, 300.0, rng)
        assert np.allclose(masses @ v, 0.0, atol=1e-9)

    def test_temperature_statistics(self):
        rng = np.random.default_rng(1)
        masses = np.full(3000, 12.0)
        v = maxwell_boltzmann_velocities(masses, 300.0, rng)
        ke = kinetic_energy(masses, v)
        t_est = 2 * ke / (3 * len(masses) * BOLTZMANN_KCAL)
        assert t_est == pytest.approx(300.0, rel=0.05)

    def test_zero_temperature(self):
        rng = np.random.default_rng(2)
        v = maxwell_boltzmann_velocities(np.full(10, 12.0), 0.0, rng)
        assert np.allclose(v, 0.0)

    def test_negative_temperature_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            maxwell_boltzmann_velocities(np.full(4, 12.0), -1.0, rng)


class TestStepping:
    def test_dt_validation(self, water_md):
        system, _ = water_md
        with pytest.raises(ValueError):
            VelocityVerlet(system, dt=0.0)

    def test_initialize_counts_one_eval(self, water_md):
        system, pos = water_md
        vv = VelocityVerlet(system, dt=0.0005)
        state = vv.initialize(pos, temperature=50.0)
        assert vv.n_force_evals == 1
        assert state.step == 0
        assert state.n_atoms == system.n_atoms

    def test_run_advances_steps(self, water_md):
        system, pos = water_md
        vv = VelocityVerlet(system, dt=0.0002)
        state = vv.initialize(pos, temperature=50.0)
        state = vv.run(state, 3)
        assert state.step == 3

    def test_run_rejects_negative(self, water_md):
        system, pos = water_md
        vv = VelocityVerlet(system, dt=0.0002)
        state = vv.initialize(pos, temperature=50.0)
        with pytest.raises(ValueError):
            vv.run(state, -1)

    def test_deterministic(self, water_md):
        system, pos = water_md
        out = []
        for _ in range(2):
            vv = VelocityVerlet(system, dt=0.0002)
            state = vv.run(vv.initialize(pos, temperature=100.0, seed=9), 5)
            out.append(state.positions.copy())
        assert np.array_equal(out[0], out[1])

    def test_momentum_conserved(self, water_md):
        system, pos = water_md
        vv = VelocityVerlet(system, dt=0.0002)
        state = vv.run(vv.initialize(pos, temperature=100.0), 10)
        p_total = system.masses @ state.velocities
        assert np.allclose(p_total, 0.0, atol=1e-7)


class TestEnergyConservation:
    def test_nve_drift_small(self, water_md):
        """Total energy drift over 150 steps stays well under kT per dof."""
        system, pos = water_md
        vv = VelocityVerlet(system, dt=0.0002)
        state = vv.initialize(pos, temperature=150.0, seed=4)
        e0 = state.potential.total + kinetic_energy(system.masses, state.velocities)
        energies = []
        for _ in range(150):
            state = vv.step(state)
            energies.append(
                state.potential.total + kinetic_energy(system.masses, state.velocities)
            )
        drift = abs(energies[-1] - e0)
        scale = 3 * system.n_atoms * BOLTZMANN_KCAL * 150.0  # ~ total thermal energy
        assert drift < 0.02 * scale, f"drift {drift} vs scale {scale}"

    def test_smaller_dt_conserves_better(self, water_md):
        system, pos = water_md

        def drift(dt, steps):
            vv = VelocityVerlet(system, dt=dt)
            state = vv.initialize(pos, temperature=150.0, seed=4)
            e0 = state.potential.total + kinetic_energy(system.masses, state.velocities)
            state = vv.run(state, steps)
            e1 = state.potential.total + kinetic_energy(system.masses, state.velocities)
            return abs(e1 - e0)

        # same simulated time, quarter the step: Verlet error ~ dt^2
        big = drift(0.0008, 25)
        small = drift(0.0002, 100)
        assert small < big
