"""Force-field parameter tables: lookup, canonicalization, wildcards."""

import math

import numpy as np
import pytest

from repro.md import ForceField, default_forcefield


@pytest.fixture(scope="module")
def ff():
    return default_forcefield()


class TestLookups:
    def test_bond_symmetric(self, ff):
        a = ff.bond_params("NH1", "CT1")
        b = ff.bond_params("CT1", "NH1")
        assert a == b

    def test_angle_symmetric(self, ff):
        a = ff.angle_params("NH1", "CT1", "C")
        b = ff.angle_params("C", "CT1", "NH1")
        assert a == b

    def test_dihedral_wildcard_fallback(self, ff):
        p = ff.dihedral_params("HB", "CT1", "CT2", "HA")
        assert p == ff.dihedral_params("X", "CT1", "CT2", "X")

    def test_dihedral_reversed_matches(self, ff):
        a = ff.dihedral_params("O", "C", "NH1", "CT1")
        b = ff.dihedral_params("CT1", "NH1", "C", "O")
        assert a == b

    def test_missing_lj_raises(self, ff):
        with pytest.raises(KeyError):
            ff.lj_params("NOPE")

    def test_missing_bond_raises(self, ff):
        with pytest.raises(KeyError):
            ff.bond_params("OT", "SUL")

    def test_missing_dihedral_raises(self, ff):
        with pytest.raises(KeyError):
            ff.dihedral_params("OT", "HT", "HT", "OT")

    def test_improper_lookup(self, ff):
        p = ff.improper_params("O", "CT1", "NH1", "C")
        assert p.kpsi > 0


class TestRegistration:
    def test_add_and_get(self):
        ff = ForceField()
        ff.add_lj("A", 0.1, 2.0)
        assert ff.lj_params("A").epsilon == 0.1

    def test_lj_validation(self):
        with pytest.raises(ValueError):
            ForceField().add_lj("A", -0.1, 2.0)
        with pytest.raises(ValueError):
            ForceField().add_lj("A", 0.1, 0.0)

    def test_dihedral_multiplicity_validation(self):
        with pytest.raises(ValueError):
            ForceField().add_dihedral("A", "B", "C", "D", 1.0, 0, 0.0)


class TestTables:
    def test_lj_tables_shapes(self, ff):
        eps, rmh = ff.lj_tables(["OT", "HT", "OT"])
        assert eps.shape == (3,)
        assert np.allclose(eps[[0, 2]], ff.lj_params("OT").epsilon)
        assert rmh[1] == ff.lj_params("HT").rmin_half

    def test_water_geometry_parameters(self, ff):
        assert ff.bond_params("OT", "HT").r0 == pytest.approx(0.9572)
        assert math.degrees(ff.angle_params("HT", "OT", "HT").theta0) == pytest.approx(
            104.52
        )

    def test_every_workload_type_has_lj(self, ff):
        for t in [
            "NH1", "H", "CT1", "CT2", "CT3", "HB", "HA", "C", "O",
            "OT", "HT", "CM", "OM", "SUL", "OSL",
        ]:
            ff.lj_params(t)  # must not raise
