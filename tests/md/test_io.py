"""Structure I/O: XYZ and PDB round-trips."""

import io

import numpy as np
import pytest

from repro.md import read_pdb_coordinates, read_xyz, write_pdb, write_xyz
from repro.workloads import build_peptide_in_water, water_topology
from repro.workloads.solvent import water_coords
from repro.md import default_forcefield


@pytest.fixture(scope="module")
def small_structure():
    topo = water_topology()
    xyz = water_coords(default_forcefield(), np.array([1.0, 2.0, 3.0]), 0)
    return topo, xyz


class TestXYZ:
    def test_roundtrip_stream(self, small_structure):
        topo, xyz = small_structure
        buf = io.StringIO()
        write_xyz(buf, topo, xyz, comment="water")
        buf.seek(0)
        elements, coords = read_xyz(buf)
        assert elements == ["O", "H", "H"]
        assert np.allclose(coords, xyz, atol=1e-6)

    def test_roundtrip_file(self, small_structure, tmp_path):
        topo, xyz = small_structure
        path = tmp_path / "w.xyz"
        write_xyz(path, topo, xyz)
        elements, coords = read_xyz(path)
        assert len(elements) == 3
        assert np.allclose(coords, xyz, atol=1e-6)

    def test_mismatched_counts_rejected(self, small_structure):
        topo, xyz = small_structure
        with pytest.raises(ValueError):
            write_xyz(io.StringIO(), topo, xyz[:2])

    def test_truncated_file_rejected(self):
        with pytest.raises(ValueError):
            read_xyz(io.StringIO("5\ncomment\nO 0 0 0\n"))

    def test_bad_record_rejected(self):
        with pytest.raises(ValueError):
            read_xyz(io.StringIO("1\nc\nO 0 0\n"))


class TestPDB:
    def test_coordinates_roundtrip(self, small_structure):
        topo, xyz = small_structure
        buf = io.StringIO()
        write_pdb(buf, topo, xyz)
        buf.seek(0)
        coords = read_pdb_coordinates(buf)
        assert np.allclose(coords, xyz, atol=1e-3)  # PDB has 3 decimals

    def test_record_types(self):
        topo, pos, _box = build_peptide_in_water(n_residues=2, n_waters=3)
        buf = io.StringIO()
        write_pdb(buf, topo, pos)
        text = buf.getvalue()
        assert text.count("\nATOM") + text.startswith("ATOM") > 0
        assert "HETATM" in text  # the waters
        assert text.rstrip().endswith("END")

    def test_peptide_atoms_are_atom_records(self):
        topo, pos, _box = build_peptide_in_water(n_residues=2, n_waters=2)
        buf = io.StringIO()
        write_pdb(buf, topo, pos)
        lines = [l for l in buf.getvalue().splitlines() if l.startswith("ATOM")]
        n_pep = sum(1 for a in topo.atoms if a.segment == "PEP")
        assert len(lines) == n_pep

    def test_empty_pdb_rejected(self):
        with pytest.raises(ValueError):
            read_pdb_coordinates(io.StringIO("REMARK nothing\nEND\n"))

    def test_mismatched_counts_rejected(self, small_structure):
        topo, xyz = small_structure
        with pytest.raises(ValueError):
            write_pdb(io.StringIO(), topo, xyz[:1])
