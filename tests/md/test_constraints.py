"""SHAKE/RATTLE constraints: projections, rigid water, long timesteps."""

import numpy as np
import pytest

from repro.md import CutoffScheme, MDSystem, default_forcefield, kinetic_energy
from repro.md.constraints import (
    ConstrainedVerlet,
    ConstraintSet,
    hydrogen_bond_constraints,
    rigid_water_constraints,
)
from repro.workloads import build_water_box


def _constraint_violation(cs, positions, box=None):
    i, j = cs.pairs[:, 0], cs.pairs[:, 1]
    dr = positions[i] - positions[j]
    if box is not None:
        dr = box.min_image(dr)
    d = np.sqrt(np.einsum("ij,ij->i", dr, dr))
    return np.abs(d - cs.distances).max()


class TestConstraintSet:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConstraintSet(np.array([[0, 0]]), np.array([1.0]))
        with pytest.raises(ValueError):
            ConstraintSet(np.array([[0, 1]]), np.array([-1.0]))
        with pytest.raises(ValueError):
            ConstraintSet(np.array([[0, 1]]), np.array([1.0, 2.0]))

    def test_empty_set_is_identity(self):
        cs = ConstraintSet(np.empty((0, 2)), np.empty(0))
        pos = np.random.default_rng(0).normal(size=(4, 3))
        vel = np.random.default_rng(1).normal(size=(4, 3))
        m = np.ones(4)
        assert np.array_equal(cs.project_positions(pos, pos + 0.1, m), pos + 0.1)
        assert np.array_equal(cs.project_velocities(pos, vel, m), vel)

    def test_position_projection_restores_distance(self):
        cs = ConstraintSet(np.array([[0, 1]]), np.array([1.0]))
        old = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        new = np.array([[0.0, 0, 0], [1.3, 0.1, 0]])
        m = np.array([16.0, 1.0])
        fixed = cs.project_positions(old, new, m)
        assert np.linalg.norm(fixed[0] - fixed[1]) == pytest.approx(1.0, abs=1e-8)

    def test_heavier_atom_moves_less(self):
        cs = ConstraintSet(np.array([[0, 1]]), np.array([1.0]))
        old = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        new = np.array([[0.0, 0, 0], [1.4, 0, 0]])
        m = np.array([100.0, 1.0])
        fixed = cs.project_positions(old, new, m)
        assert np.linalg.norm(fixed[0] - old[0]) < np.linalg.norm(fixed[1] - new[1])

    def test_velocity_projection_removes_radial_component(self):
        cs = ConstraintSet(np.array([[0, 1]]), np.array([1.0]))
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        vel = np.array([[0.5, 0.2, 0], [-0.5, 0.1, 0]])  # closing along x
        m = np.array([16.0, 1.0])
        out = cs.project_velocities(pos, vel, m)
        v_rel = out[0] - out[1]
        r = pos[0] - pos[1]
        assert abs(v_rel @ r) < 1e-8
        # tangential motion survives
        assert abs(out[0][1] - 0.2) < 0.15

    def test_momentum_preserved_by_projections(self):
        cs = ConstraintSet(np.array([[0, 1], [1, 2]]), np.array([1.0, 1.2]))
        rng = np.random.default_rng(3)
        old = np.array([[0.0, 0, 0], [1.0, 0, 0], [1.0, 1.2, 0]])
        new = old + rng.normal(scale=0.05, size=old.shape)
        m = np.array([16.0, 12.0, 1.0])
        fixed = cs.project_positions(old, new, m)
        # SHAKE forces are internal: total momentum change is zero
        assert np.allclose(m @ (fixed - new), 0.0, atol=1e-10)
        vel = rng.normal(size=(3, 3))
        out = cs.project_velocities(old, vel, m)
        assert np.allclose(m @ (out - vel), 0.0, atol=1e-10)

    def test_coupled_triangle_converges(self):
        """Three mutually-coupled constraints (a rigid water triangle)."""
        cs = ConstraintSet(
            np.array([[0, 1], [0, 2], [1, 2]]), np.array([1.0, 1.0, 1.5])
        )
        old = np.array([[0.0, 0, 0], [1.0, 0, 0], [0.25, 0.97, 0]])
        # make old satisfy the constraints first
        old = cs.project_positions(old, old, np.ones(3))
        new = old + np.random.default_rng(4).normal(scale=0.05, size=old.shape)
        fixed = cs.project_positions(old, new, np.array([16.0, 1.0, 1.0]))
        assert _constraint_violation(cs, fixed) < 1e-7


class TestFactories:
    def test_hydrogen_constraints_cover_all_h_bonds(self):
        topo, _, _ = build_water_box(n_side=2)
        cs = hydrogen_bond_constraints(topo, default_forcefield())
        assert cs.n_constraints == 2 * 8  # two O-H bonds per water

    def test_rigid_water_three_per_molecule(self):
        topo, pos, _ = build_water_box(n_side=2)
        cs = rigid_water_constraints(topo, default_forcefield())
        assert cs.n_constraints == 3 * 8
        # the generated geometry already satisfies them
        assert _constraint_violation(cs, pos) < 1e-9


class TestConstrainedVerlet:
    @pytest.fixture(scope="class")
    def rigid_md(self):
        topo, pos, box = build_water_box(n_side=3)
        ff = default_forcefield()
        system = MDSystem(topo, ff, box, CutoffScheme(r_cut=4.0, skin=1.2))
        cs = rigid_water_constraints(topo, ff)
        return system, cs, pos

    def test_constraints_hold_along_trajectory(self, rigid_md):
        system, cs, pos = rigid_md
        md = ConstrainedVerlet(system, cs, dt=0.002)  # 2 fs!
        state = md.initialize(pos, temperature=150.0, seed=7)
        state = md.run(state, 25)
        assert _constraint_violation(cs, state.positions, system.box) < 1e-6

    def test_dof_accounting(self, rigid_md):
        system, cs, _ = rigid_md
        md = ConstrainedVerlet(system, cs, dt=0.002)
        assert md.n_dof == 3 * system.n_atoms - 3 - 3 * 27

    def test_energy_conservation_at_2fs(self, rigid_md):
        """Rigid waters allow a 2 fs step with modest drift — the payoff."""
        system, cs, pos = rigid_md
        md = ConstrainedVerlet(system, cs, dt=0.002)
        state = md.initialize(pos, temperature=150.0, seed=7)
        e0 = state.potential.total + kinetic_energy(system.masses, state.velocities)
        state = md.run(state, 50)
        e1 = state.potential.total + kinetic_energy(system.masses, state.velocities)
        from repro.md.units import BOLTZMANN_KCAL

        scale = 3 * system.n_atoms * BOLTZMANN_KCAL * 150.0
        assert abs(e1 - e0) < 0.05 * scale

    def test_rigid_bonds_store_no_potential(self, rigid_md):
        system, cs, pos = rigid_md
        md = ConstrainedVerlet(system, cs, dt=0.002)
        state = md.run(md.initialize(pos, temperature=150.0, seed=7), 10)
        # bond/angle terms stay at their minimum: the constraints hold them
        assert state.potential.bond < 1e-6
        assert state.potential.angle < 1e-6

    def test_validation(self, rigid_md):
        system, cs, _ = rigid_md
        with pytest.raises(ValueError):
            ConstrainedVerlet(system, cs, dt=0.0)
