"""Shift and switch functions: values, smoothness, derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import CutoffScheme, shift_function, switch_function


class TestShift:
    def test_at_zero(self):
        s, _ = shift_function(np.array([0.0]), 10.0)
        assert s[0] == pytest.approx(1.0)

    def test_zero_at_cutoff(self):
        s, ds = shift_function(np.array([10.0]), 10.0)
        assert s[0] == pytest.approx(0.0)
        assert ds[0] == pytest.approx(0.0)

    def test_zero_beyond_cutoff(self):
        s, ds = shift_function(np.array([10.5, 20.0]), 10.0)
        assert np.all(s == 0.0)
        assert np.all(ds == 0.0)

    def test_monotone_decreasing_inside(self):
        r = np.linspace(0.0, 10.0, 200)
        s, _ = shift_function(r, 10.0)
        assert np.all(np.diff(s) <= 1e-12)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            shift_function(np.array([1.0]), 0.0)

    @given(st.floats(min_value=0.01, max_value=9.99))
    @settings(max_examples=60)
    def test_derivative_matches_finite_difference(self, r):
        h = 1e-6
        sp, _ = shift_function(np.array([r + h]), 10.0)
        sm, _ = shift_function(np.array([r - h]), 10.0)
        _, ds = shift_function(np.array([r]), 10.0)
        assert ds[0] == pytest.approx((sp[0] - sm[0]) / (2 * h), abs=1e-5)


class TestSwitch:
    def test_one_below_window(self):
        s, ds = switch_function(np.array([5.0]), 8.0, 10.0)
        assert s[0] == pytest.approx(1.0)
        assert ds[0] == pytest.approx(0.0)

    def test_zero_above_window(self):
        s, ds = switch_function(np.array([11.0]), 8.0, 10.0)
        assert s[0] == pytest.approx(0.0)
        assert ds[0] == pytest.approx(0.0)

    def test_continuous_at_edges(self):
        eps = 1e-9
        s_lo, _ = switch_function(np.array([8.0 - eps, 8.0 + eps]), 8.0, 10.0)
        assert s_lo[0] == pytest.approx(s_lo[1], abs=1e-6)
        s_hi, _ = switch_function(np.array([10.0 - eps, 10.0 + eps]), 8.0, 10.0)
        assert s_hi[0] == pytest.approx(s_hi[1], abs=1e-6)

    def test_monotone_in_window(self):
        r = np.linspace(8.0, 10.0, 300)
        s, _ = switch_function(r, 8.0, 10.0)
        assert np.all(np.diff(s) <= 1e-12)
        assert np.all((s >= 0) & (s <= 1))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            switch_function(np.array([1.0]), 10.0, 8.0)
        with pytest.raises(ValueError):
            switch_function(np.array([1.0]), 0.0, 8.0)

    @given(st.floats(min_value=8.01, max_value=9.99))
    @settings(max_examples=60)
    def test_derivative_matches_finite_difference(self, r):
        h = 1e-6
        sp, _ = switch_function(np.array([r + h]), 8.0, 10.0)
        sm, _ = switch_function(np.array([r - h]), 8.0, 10.0)
        _, ds = switch_function(np.array([r]), 8.0, 10.0)
        assert ds[0] == pytest.approx((sp[0] - sm[0]) / (2 * h), abs=1e-5)


class TestCutoffScheme:
    def test_defaults(self):
        s = CutoffScheme()
        assert s.r_cut == 10.0
        assert s.switch_on == pytest.approx(8.0)
        assert s.list_cutoff == pytest.approx(12.0)

    def test_explicit_switch_on(self):
        s = CutoffScheme(r_cut=10.0, r_on=7.5)
        assert s.switch_on == 7.5

    def test_validation(self):
        with pytest.raises(ValueError):
            CutoffScheme(r_cut=-1.0)
        with pytest.raises(ValueError):
            CutoffScheme(r_cut=10.0, r_on=12.0)
        with pytest.raises(ValueError):
            CutoffScheme(skin=-0.1)
