"""Bonded kernels: energies at equilibrium, forces = -grad E, invariants."""

import math

import numpy as np
import pytest

from repro.md import (
    Angle,
    Atom,
    Bond,
    BondedTables,
    Dihedral,
    Improper,
    PeriodicBox,
    Topology,
    default_forcefield,
)
from repro.md.bonded import (
    angle_energy_forces,
    bond_energy_forces,
    bonded_energy_forces,
    dihedral_energy_forces,
    improper_energy_forces,
)

BOX = PeriodicBox(50.0, 50.0, 50.0)


def _water_tables():
    ff = default_forcefield()
    topo = Topology(
        atoms=[
            Atom("O", "OT", -0.834, 16.0),
            Atom("H1", "HT", 0.417, 1.0),
            Atom("H2", "HT", 0.417, 1.0),
        ],
        bonds=[Bond(0, 1), Bond(0, 2)],
        angles=[Angle(1, 0, 2)],
    )
    return BondedTables(topo, ff), ff


def _butane_tables():
    """A four-carbon chain exercising bonds, angles and a dihedral."""
    ff = default_forcefield()
    topo = Topology(
        atoms=[Atom(f"C{i}", "CT2", 0.0, 12.0) for i in range(4)],
        bonds=[Bond(0, 1), Bond(1, 2), Bond(2, 3)],
        angles=[Angle(0, 1, 2), Angle(1, 2, 3)],
        dihedrals=[Dihedral(0, 1, 2, 3)],
    )
    return BondedTables(topo, ff), ff


def _improper_tables():
    ff = default_forcefield()
    topo = Topology(
        atoms=[
            Atom("O", "O", -0.51, 16.0),
            Atom("CA", "CT1", 0.07, 12.0),
            Atom("N", "NH1", -0.47, 14.0),
            Atom("C", "C", 0.51, 12.0),
        ],
        impropers=[Improper(0, 1, 2, 3)],
    )
    return BondedTables(topo, ff), ff


def _fd_forces(fn, positions, tables, h=1e-6):
    """Central-difference gradient of the energy returned by fn."""
    out = np.zeros_like(positions)
    for i in range(len(positions)):
        for d in range(3):
            pp = positions.copy()
            pp[i, d] += h
            pm = positions.copy()
            pm[i, d] -= h
            ep, _ = fn(pp, BOX, tables)
            em, _ = fn(pm, BOX, tables)
            out[i, d] = -(ep - em) / (2 * h)
    return out


class TestBond:
    def test_zero_at_equilibrium(self):
        tables, ff = _water_tables()
        r0 = ff.bond_params("OT", "HT").r0
        pos = np.array([[0.0, 0, 0], [r0, 0, 0], [0, r0, 0]])
        e, f = bond_energy_forces(pos, BOX, tables)
        assert e == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(f, 0.0, atol=1e-9)

    def test_stretched_energy_value(self):
        tables, ff = _water_tables()
        p = ff.bond_params("OT", "HT")
        pos = np.array([[0.0, 0, 0], [p.r0 + 0.1, 0, 0], [0, p.r0, 0]])
        e, _ = bond_energy_forces(pos, BOX, tables)
        assert e == pytest.approx(p.kb * 0.01, rel=1e-9)

    def test_forces_match_gradient(self):
        tables, _ = _water_tables()
        rng = np.random.default_rng(3)
        pos = np.array([[0.0, 0, 0], [1.1, 0.1, 0], [-0.2, 0.9, 0.1]])
        pos += rng.normal(scale=0.05, size=pos.shape)
        _, f = bond_energy_forces(pos, BOX, tables)
        assert np.allclose(f, _fd_forces(bond_energy_forces, pos, tables), atol=1e-4)

    def test_newton_third_law(self):
        tables, _ = _water_tables()
        pos = np.array([[0.0, 0, 0], [1.2, 0.3, 0.1], [-0.3, 0.8, -0.2]])
        _, f = bond_energy_forces(pos, BOX, tables)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)

    def test_periodic_bond_across_boundary(self):
        tables, ff = _water_tables()
        r0 = ff.bond_params("OT", "HT").r0
        pos = np.array([[49.9, 0, 0], [49.9 + r0 - 50.0, 0, 0], [49.9, r0, 0]])
        e, _ = bond_energy_forces(pos, BOX, tables)
        assert e == pytest.approx(0.0, abs=1e-10)


class TestAngle:
    def test_zero_at_equilibrium(self):
        tables, ff = _water_tables()
        p = ff.angle_params("HT", "OT", "HT")
        r0 = ff.bond_params("OT", "HT").r0
        half = p.theta0 / 2
        pos = np.array(
            [
                [0.0, 0, 0],
                [r0 * math.sin(half), r0 * math.cos(half), 0],
                [-r0 * math.sin(half), r0 * math.cos(half), 0],
            ]
        )
        e, f = angle_energy_forces(pos, BOX, tables)
        assert e == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(f, 0.0, atol=1e-8)

    def test_forces_match_gradient(self):
        tables, _ = _water_tables()
        pos = np.array([[0.0, 0, 0], [1.0, 0.2, -0.1], [-0.4, 0.9, 0.3]])
        _, f = angle_energy_forces(pos, BOX, tables)
        assert np.allclose(f, _fd_forces(angle_energy_forces, pos, tables), atol=1e-4)

    def test_total_force_and_torque_free(self):
        tables, _ = _water_tables()
        pos = np.array([[0.0, 0, 0], [1.0, 0.2, -0.1], [-0.4, 0.9, 0.3]])
        _, f = angle_energy_forces(pos, BOX, tables)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)
        torque = np.cross(pos, f).sum(axis=0)
        assert np.allclose(torque, 0.0, atol=1e-9)


class TestDihedral:
    def test_forces_match_gradient(self):
        tables, _ = _butane_tables()
        pos = np.array(
            [[0.0, 0, 0], [1.5, 0.1, 0], [2.0, 1.5, 0.2], [3.4, 1.8, -0.4]]
        )
        _, f = dihedral_energy_forces(pos, BOX, tables)
        assert np.allclose(f, _fd_forces(dihedral_energy_forces, pos, tables), atol=1e-4)

    def test_energy_range(self):
        """E = k(1 + cos(3 phi)) must stay within [0, 2k]."""
        tables, ff = _butane_tables()
        k = ff.dihedral_params("X", "CT2", "CT2", "X").kchi
        rng = np.random.default_rng(5)
        for _ in range(20):
            pos = rng.normal(scale=1.5, size=(4, 3)) + np.array(
                [[0, 0, 0], [1.5, 0, 0], [3, 0, 0], [4.5, 0, 0]]
            )
            e, _ = dihedral_energy_forces(pos, BOX, tables)
            assert -1e-9 <= e <= 2 * k + 1e-9

    def test_force_free_at_anti(self):
        """phi = 180 deg is a minimum of 1 + cos(3 phi)... check forces tiny."""
        tables, _ = _butane_tables()
        pos = np.array([[0.0, 1, 0], [1.0, 0, 0], [2.5, 0, 0], [3.5, -1, 0]])
        _, f = dihedral_energy_forces(pos, BOX, tables)
        # at exactly phi=pi the torsional force vanishes
        assert np.allclose(f, 0.0, atol=1e-8)

    def test_newton_third_law(self):
        tables, _ = _butane_tables()
        pos = np.array([[0.1, 0, 0.3], [1.5, 0.1, 0], [2.0, 1.5, 0.2], [3.4, 1.8, -0.4]])
        _, f = dihedral_energy_forces(pos, BOX, tables)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)


class TestImproper:
    def test_zero_when_planar(self):
        tables, _ = _improper_tables()
        # all four atoms coplanar around the carbonyl carbon
        pos = np.array(
            [[1.2, 0.0, 0.0], [-0.8, 1.2, 0.0], [-0.8, -1.2, 0.0], [0.0, 0.0, 0.0]]
        )
        e, _ = improper_energy_forces(pos, BOX, tables)
        assert e == pytest.approx(0.0, abs=1e-9)

    def test_pyramidalization_costs_energy(self):
        tables, _ = _improper_tables()
        pos = np.array(
            [[1.2, 0.0, 0.4], [-0.8, 1.2, 0.0], [-0.8, -1.2, 0.0], [0.0, 0.0, 0.0]]
        )
        e, _ = improper_energy_forces(pos, BOX, tables)
        assert e > 0.1

    def test_forces_match_gradient(self):
        tables, _ = _improper_tables()
        pos = np.array(
            [[1.2, 0.1, 0.3], [-0.8, 1.2, -0.1], [-0.7, -1.2, 0.2], [0.05, 0.0, 0.1]]
        )
        _, f = improper_energy_forces(pos, BOX, tables)
        assert np.allclose(f, _fd_forces(improper_energy_forces, pos, tables), atol=1e-4)


class TestCombined:
    def test_bonded_energy_forces_sums_terms(self):
        tables, _ = _butane_tables()
        pos = np.array(
            [[0.0, 0, 0], [1.5, 0.1, 0], [2.0, 1.5, 0.2], [3.4, 1.8, -0.4]]
        )
        energies, forces = bonded_energy_forces(pos, BOX, tables)
        e_b, f_b = bond_energy_forces(pos, BOX, tables)
        e_a, f_a = angle_energy_forces(pos, BOX, tables)
        e_d, f_d = dihedral_energy_forces(pos, BOX, tables)
        assert energies["bond"] == pytest.approx(e_b)
        assert energies["angle"] == pytest.approx(e_a)
        assert energies["dihedral"] == pytest.approx(e_d)
        assert energies["improper"] == 0.0
        assert np.allclose(forces, f_b + f_a + f_d)

    def test_empty_topology(self):
        ff = default_forcefield()
        topo = Topology(atoms=[Atom("O", "OT", 0.0, 16.0)])
        tables = BondedTables(topo, ff)
        energies, forces = bonded_energy_forces(np.zeros((1, 3)), BOX, tables)
        assert all(v == 0.0 for v in energies.values())
        assert np.allclose(forces, 0.0)
        assert tables.n_terms == 0
