"""Topology: validation, exclusions, merging, term derivation."""

import numpy as np
import pytest

from repro.md import Atom, Bond, Topology
from repro.md.topology import derive_angles, derive_dihedrals


def _atom(name="X", type_name="CT2", charge=0.0):
    return Atom(name=name, type_name=type_name, charge=charge, mass=12.0)


def _chain(n):
    """A linear chain of n atoms bonded consecutively."""
    atoms = [_atom(f"A{i}") for i in range(n)]
    bonds = [Bond(i, i + 1) for i in range(n - 1)]
    return Topology(atoms=atoms, bonds=bonds)


class TestValidation:
    def test_rejects_out_of_range_bond(self):
        with pytest.raises(ValueError):
            Topology(atoms=[_atom()], bonds=[Bond(0, 1)])

    def test_rejects_self_bond(self):
        with pytest.raises(ValueError):
            Topology(atoms=[_atom(), _atom()], bonds=[Bond(1, 1)])

    def test_accepts_valid(self):
        topo = _chain(3)
        assert topo.n_atoms == 3


class TestArrays:
    def test_charges_masses(self):
        topo = Topology(atoms=[_atom(charge=0.5), _atom(charge=-0.5)])
        assert np.allclose(topo.charges, [0.5, -0.5])
        assert np.allclose(topo.masses, [12.0, 12.0])
        assert topo.total_charge() == pytest.approx(0.0)

    def test_empty_term_arrays(self):
        topo = Topology(atoms=[_atom()])
        assert topo.bond_index_array().shape == (0, 2)
        assert topo.angle_index_array().shape == (0, 3)
        assert topo.dihedral_index_array().shape == (0, 4)
        assert topo.improper_index_array().shape == (0, 4)


class TestExclusions:
    def test_linear_chain_separation_3(self):
        # chain 0-1-2-3-4: within 3 bonds of 0: 1, 2, 3
        topo = _chain(5)
        excl = topo.exclusion_pairs(max_separation=3)
        pairs = set(map(tuple, excl))
        assert (0, 1) in pairs and (0, 2) in pairs and (0, 3) in pairs
        assert (0, 4) not in pairs

    def test_separation_1_is_bonds_only(self):
        topo = _chain(4)
        excl = topo.exclusion_pairs(max_separation=1)
        assert set(map(tuple, excl)) == {(0, 1), (1, 2), (2, 3)}

    def test_sorted_and_unique(self):
        topo = _chain(6)
        excl = topo.exclusion_pairs()
        assert np.all(excl[:, 0] < excl[:, 1])
        as_tuples = list(map(tuple, excl))
        assert len(as_tuples) == len(set(as_tuples))
        assert as_tuples == sorted(as_tuples)

    def test_rejects_bad_separation(self):
        with pytest.raises(ValueError):
            _chain(3).exclusion_pairs(max_separation=0)

    def test_disconnected_atoms_have_no_exclusions(self):
        topo = Topology(atoms=[_atom(), _atom()])
        assert len(topo.exclusion_pairs()) == 0


class TestMerge:
    def test_merge_offsets_indices(self):
        a = _chain(3)
        b = _chain(2)
        merged = a.merge(b)
        assert merged.n_atoms == 5
        assert (merged.bonds[-1].i, merged.bonds[-1].j) == (3, 4)

    def test_merge_offsets_residues(self):
        a = Topology(atoms=[_atom()])
        b = Topology(atoms=[_atom()])
        merged = a.merge(b)
        assert merged.atoms[0].residue_index == 0
        assert merged.atoms[1].residue_index == 1

    def test_concat_many_linear(self):
        parts = [_chain(3) for _ in range(10)]
        merged = Topology.concat(parts)
        assert merged.n_atoms == 30
        assert len(merged.bonds) == 20

    def test_concat_matches_repeated_merge(self):
        parts = [_chain(3), _chain(2), _chain(4)]
        via_concat = Topology.concat(parts)
        via_merge = parts[0].merge(parts[1]).merge(parts[2])
        assert via_concat.n_atoms == via_merge.n_atoms
        assert [(b.i, b.j) for b in via_concat.bonds] == [
            (b.i, b.j) for b in via_merge.bonds
        ]


class TestDerivation:
    def test_angles_of_linear_chain(self):
        bonds = [Bond(0, 1), Bond(1, 2), Bond(2, 3)]
        angles = derive_angles(bonds, 4)
        triples = {(a.i, a.j, a.k) for a in angles}
        assert triples == {(0, 1, 2), (1, 2, 3)}

    def test_angles_of_star(self):
        # central atom 0 bonded to 1, 2, 3 -> three angles
        bonds = [Bond(0, 1), Bond(0, 2), Bond(0, 3)]
        angles = derive_angles(bonds, 4)
        assert len(angles) == 3
        assert all(a.j == 0 for a in angles)

    def test_dihedrals_of_linear_chain(self):
        bonds = [Bond(0, 1), Bond(1, 2), Bond(2, 3), Bond(3, 4)]
        dihedrals = derive_dihedrals(bonds, 5)
        quads = {(d.i, d.j, d.k, d.l) for d in dihedrals}
        assert quads == {(0, 1, 2, 3), (1, 2, 3, 4)}

    def test_dihedrals_exclude_three_rings(self):
        # triangle 0-1-2: paths like 2-0-1-2 must not appear
        bonds = [Bond(0, 1), Bond(1, 2), Bond(0, 2)]
        dihedrals = derive_dihedrals(bonds, 3)
        assert dihedrals == []

    def test_methane_like_dihedral_count(self):
        # X-C-C-X with 3 substituents each side -> 9 dihedrals
        bonds = [Bond(0, 1)]
        bonds += [Bond(0, i) for i in (2, 3, 4)]
        bonds += [Bond(1, i) for i in (5, 6, 7)]
        dihedrals = derive_dihedrals(bonds, 8)
        assert len(dihedrals) == 9
