"""MDSystem: wiring, classic/PME split, full-gradient consistency."""

import numpy as np
import pytest

from repro.md import CutoffScheme, MDSystem, default_forcefield
from repro.workloads import build_water_box


@pytest.fixture(scope="module")
def shift_system():
    topo, pos, box = build_water_box(n_side=3)
    system = MDSystem(topo, default_forcefield(), box, CutoffScheme(r_cut=4.0, skin=1.0))
    return system, pos


@pytest.fixture(scope="module")
def pme_system():
    topo, pos, box = build_water_box(n_side=3)
    system = MDSystem(
        topo,
        default_forcefield(),
        box,
        CutoffScheme(r_cut=4.0, skin=1.0),
        electrostatics="pme",
        pme_grid=(16, 16, 16),
    )
    return system, pos


class TestConstruction:
    def test_rejects_unknown_model(self):
        topo, pos, box = build_water_box(n_side=2)
        with pytest.raises(ValueError):
            MDSystem(topo, default_forcefield(), box, electrostatics="reaction-field")

    def test_pme_requires_grid(self):
        topo, pos, box = build_water_box(n_side=2)
        with pytest.raises(ValueError):
            MDSystem(topo, default_forcefield(), box, electrostatics="pme")

    def test_pme_accessors_guarded_without_pme(self, shift_system):
        system, _ = shift_system
        assert not system.uses_pme
        with pytest.raises(RuntimeError):
            _ = system.pme
        with pytest.raises(RuntimeError):
            _ = system.ewald_alpha
        with pytest.raises(RuntimeError):
            system.pme_energy_forces(np.zeros((system.n_atoms, 3)))

    def test_pme_alpha_reasonable(self, pme_system):
        system, _ = pme_system
        # erfc(alpha * r_cut) ~ 1e-5 -> alpha ~ 3.1 / r_cut
        assert 2.5 / 4.0 < system.ewald_alpha < 3.7 / 4.0


class TestEnergies:
    def test_classic_split_consistency(self, shift_system):
        system, pos = shift_system
        breakdown, forces = system.energy_forces(pos)
        assert breakdown.pme_total == 0.0
        assert breakdown.total == pytest.approx(breakdown.classic_total)
        assert forces.shape == (system.n_atoms, 3)

    def test_pme_split_adds_up(self, pme_system):
        system, pos = pme_system
        full, forces = system.energy_forces(pos)
        classic, f1 = system.classic_energy_forces(pos)
        pme, f2 = system.pme_energy_forces(pos)
        assert full.total == pytest.approx(classic.total + pme.total, rel=1e-12)
        assert np.allclose(forces, f1 + f2)

    def test_water_box_bonded_relaxed(self, shift_system):
        system, pos = shift_system
        breakdown, _ = system.energy_forces(pos)
        assert breakdown.bond == pytest.approx(0.0, abs=1e-9)
        assert breakdown.angle == pytest.approx(0.0, abs=1e-9)

    def test_pme_self_energy_negative(self, pme_system):
        system, pos = pme_system
        breakdown, _ = system.pme_energy_forces(pos)
        assert breakdown.pme_self < 0


class TestGradients:
    @pytest.mark.parametrize("fixture", ["shift_system", "pme_system"])
    def test_total_forces_match_gradient(self, fixture, request):
        system, pos = request.getfixturevalue(fixture)
        _, forces = system.energy_forces(pos)
        rng = np.random.default_rng(11)
        h = 1e-5
        for _ in range(6):
            i = int(rng.integers(system.n_atoms))
            d = int(rng.integers(3))
            pp = pos.copy(); pp[i, d] += h
            pm = pos.copy(); pm[i, d] -= h
            ep, _ = system.energy_forces(pp)
            em, _ = system.energy_forces(pm)
            fd = -(ep.total - em.total) / (2 * h)
            assert forces[i, d] == pytest.approx(fd, abs=5e-4)


class TestMinimize:
    def test_minimize_reduces_energy(self):
        topo, pos, box = build_water_box(n_side=2)
        system = MDSystem(topo, default_forcefield(), box, CutoffScheme(r_cut=2.8, skin=0.8))
        jittered = pos + np.random.default_rng(1).normal(scale=0.08, size=pos.shape)
        e0, _ = system.energy_forces(jittered)
        relaxed = system.minimize(jittered, n_steps=60, max_step=0.01)
        e1, _ = system.energy_forces(relaxed)
        assert e1.total < e0.total


class TestEnergyBreakdownAlgebra:
    def test_addition(self):
        from repro.md import EnergyBreakdown

        a = EnergyBreakdown(bond=1.0, lj=2.0)
        b = EnergyBreakdown(bond=0.5, pme_reciprocal=3.0)
        c = a + b
        assert c.bond == 1.5
        assert c.lj == 2.0
        assert c.pme_reciprocal == 3.0
        assert c.classic_total == pytest.approx(3.5)
        assert c.pme_total == pytest.approx(3.0)
        assert c.electrostatic == pytest.approx(3.0)

    def test_as_dict_roundtrip(self):
        from repro.md import EnergyBreakdown

        e = EnergyBreakdown(bond=1.0, angle=2.0, pme_self=-3.0)
        assert EnergyBreakdown(**e.as_dict()) == e
