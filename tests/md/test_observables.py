"""Trajectory observables: temperature, Rg, RMSD, MSD, dipole."""

import numpy as np
import pytest

from repro.md import (
    PeriodicBox,
    center_of_mass,
    dipole_moment,
    mean_squared_displacement,
    radius_of_gyration,
    rmsd,
    temperature,
)
from repro.md.observables import kabsch_rotation
from repro.md.units import BOLTZMANN_KCAL, KINETIC_CONVERT


class TestTemperature:
    def test_matches_kinetic_definition(self):
        masses = np.array([12.0, 16.0])
        v = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        ke = 0.5 * (12 * 1 + 16 * 4) / KINETIC_CONVERT
        n_dof = 3
        assert temperature(masses, v) == pytest.approx(2 * ke / (n_dof * BOLTZMANN_KCAL))

    def test_constraints_reduce_dof(self):
        masses = np.full(10, 12.0)
        rng = np.random.default_rng(0)
        v = rng.normal(size=(10, 3))
        assert temperature(masses, v, n_constraints=5) > temperature(masses, v)

    def test_no_dof_rejected(self):
        with pytest.raises(ValueError):
            temperature(np.array([12.0]), np.zeros((1, 3)))


class TestStructureMetrics:
    def test_center_of_mass(self):
        masses = np.array([1.0, 3.0])
        pos = np.array([[0.0, 0, 0], [4.0, 0, 0]])
        assert np.allclose(center_of_mass(masses, pos), [3.0, 0, 0])

    def test_radius_of_gyration_dimer(self):
        masses = np.array([1.0, 1.0])
        pos = np.array([[-1.0, 0, 0], [1.0, 0, 0]])
        assert radius_of_gyration(masses, pos) == pytest.approx(1.0)

    def test_rg_invariant_under_translation(self):
        rng = np.random.default_rng(1)
        masses = rng.uniform(1, 16, 20)
        pos = rng.normal(size=(20, 3))
        assert radius_of_gyration(masses, pos) == pytest.approx(
            radius_of_gyration(masses, pos + 5.0)
        )


class TestRMSD:
    def test_identical_is_zero(self, rng):
        pos = rng.normal(size=(15, 3))
        assert rmsd(pos, pos) == pytest.approx(0.0, abs=1e-10)

    def test_superposition_removes_rotation(self, rng):
        pos = rng.normal(size=(15, 3))
        theta = 0.7
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0],
                [np.sin(theta), np.cos(theta), 0],
                [0, 0, 1],
            ]
        )
        moved = pos @ rot.T + np.array([3.0, -1.0, 2.0])
        assert rmsd(moved, pos, superpose=True) == pytest.approx(0.0, abs=1e-9)
        assert rmsd(moved, pos, superpose=False) > 1.0

    def test_known_displacement(self):
        pos = np.zeros((4, 3))
        ref = np.zeros((4, 3))
        ref[0, 0] = 2.0
        # centred ref x-coords: [1.5, -0.5, -0.5, -0.5]
        expect = np.sqrt((1.5**2 + 3 * 0.5**2) / 4.0)
        assert rmsd(pos, ref, superpose=False) == pytest.approx(expect, rel=1e-12)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmsd(np.zeros((3, 3)), np.zeros((4, 3)))

    def test_kabsch_is_proper_rotation(self, rng):
        a = rng.normal(size=(10, 3))
        b = rng.normal(size=(10, 3))
        a -= a.mean(0)
        b -= b.mean(0)
        r = kabsch_rotation(a, b)
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-10)
        assert np.linalg.det(r) == pytest.approx(1.0)


class TestMSD:
    def test_static_trajectory_zero(self):
        traj = np.zeros((5, 4, 3))
        assert np.allclose(mean_squared_displacement(traj), 0.0)

    def test_ballistic_motion(self):
        frames = 6
        traj = np.zeros((frames, 2, 3))
        for f in range(frames):
            traj[f, :, 0] = f * 0.5
        msd = mean_squared_displacement(traj)
        assert np.allclose(msd, (0.5 * np.arange(frames)) ** 2)

    def test_unwrapping_through_boundary(self):
        box = PeriodicBox(10.0, 10.0, 10.0)
        # an atom drifting +1 A/frame in x, wrapped into [0, 10)
        frames = 15
        traj = np.zeros((frames, 1, 3))
        for f in range(frames):
            traj[f, 0, 0] = (f * 1.0) % 10.0
        msd = mean_squared_displacement(traj, box=box)
        assert msd[-1] == pytest.approx((frames - 1) ** 2)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            mean_squared_displacement(np.zeros((5, 3)))


class TestDipole:
    def test_neutral_pair(self):
        q = np.array([1.0, -1.0])
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        assert np.allclose(dipole_moment(q, pos), [-2.0, 0, 0])

    def test_translation_invariant_for_neutral(self, rng):
        q = rng.normal(size=8)
        q -= q.mean()
        pos = rng.normal(size=(8, 3))
        d1 = dipole_moment(q, pos)
        d2 = dipole_moment(q, pos + 7.0)
        assert np.allclose(d1, d2, atol=1e-9)
