"""Unit-system sanity: constants and conversions."""

import math

import pytest

from repro.md import units


def test_coulomb_constant_matches_charmm():
    assert units.COULOMB_CONSTANT == pytest.approx(332.0716)


def test_accel_convert_value():
    # 1 kcal/mol/A on 1 amu = 4184e-4 A/ps^2 * 1e6 = 418.4
    assert units.ACCEL_CONVERT == pytest.approx(418.4)


def test_kinetic_energy_roundtrip():
    # a 1 amu particle at thermal speed for T has KE = 3/2 kT
    t = 300.0
    v = units.thermal_speed(1.0, t)
    ke = units.kinetic_energy_to_kcal(1.0, v)
    assert ke == pytest.approx(1.5 * units.BOLTZMANN_KCAL * t, rel=1e-12)


def test_temperature_from_kinetic_inverts():
    ke = 5.0
    n_dof = 30
    t = units.temperature_from_kinetic(ke, n_dof)
    assert 0.5 * n_dof * units.BOLTZMANN_KCAL * t == pytest.approx(ke)


def test_temperature_requires_positive_dof():
    with pytest.raises(ValueError):
        units.temperature_from_kinetic(1.0, 0)


def test_thermal_speed_zero_temperature():
    assert units.thermal_speed(12.0, 0.0) == 0.0


def test_thermal_speed_rejects_bad_mass():
    with pytest.raises(ValueError):
        units.thermal_speed(-1.0, 300.0)


def test_thermal_speed_rejects_negative_temperature():
    with pytest.raises(ValueError):
        units.thermal_speed(1.0, -5.0)


def test_thermal_speed_scales_with_mass():
    light = units.thermal_speed(1.0, 300.0)
    heavy = units.thermal_speed(16.0, 300.0)
    assert light == pytest.approx(4.0 * heavy)


def test_boltzmann_constant_order_of_magnitude():
    # kT at 300 K is about 0.6 kcal/mol
    assert 0.59 < units.BOLTZMANN_KCAL * 300.0 < 0.60


def test_deg2rad():
    assert units.DEG2RAD * 180.0 == pytest.approx(math.pi)
