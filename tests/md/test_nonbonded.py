"""Non-bonded kernel: LJ + electrostatics values, gradients, cutoffs."""

import numpy as np
import pytest
from scipy.special import erfc

from repro.md import CutoffScheme, NonbondedKernel, PeriodicBox, default_forcefield
from repro.md.units import COULOMB_CONSTANT

BOX = PeriodicBox(40.0, 40.0, 40.0)
SCHEME = CutoffScheme(r_cut=10.0, skin=2.0)


def _kernel(types, charges, elec_mode="shift", alpha=None, scheme=SCHEME):
    ff = default_forcefield()
    return NonbondedKernel(
        ff, types, np.array(charges), BOX, scheme, elec_mode=elec_mode, ewald_alpha=alpha
    )


def _pair(r):
    pos = np.array([[5.0, 5.0, 5.0], [5.0 + r, 5.0, 5.0]])
    pairs = np.array([[0, 1]], dtype=np.int64)
    return pos, pairs


class TestConstruction:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            _kernel(["OT", "OT"], [0.0, 0.0], elec_mode="pppm")

    def test_ewald_requires_alpha(self):
        with pytest.raises(ValueError):
            _kernel(["OT", "OT"], [0.0, 0.0], elec_mode="ewald")

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            _kernel(["OT"], [0.0, 0.0])


class TestLennardJones:
    def test_minimum_depth(self):
        """At r = Rmin the LJ energy is -eps (inside the switch-on radius)."""
        ff = default_forcefield()
        p = ff.lj_params("OT")
        kern = _kernel(["OT", "OT"], [0.0, 0.0])
        pos, pairs = _pair(2 * p.rmin_half)
        energies, forces = kern.compute(pos, pairs)
        assert energies.lj == pytest.approx(-p.epsilon, rel=1e-12)
        assert np.allclose(forces, 0.0, atol=1e-9)

    def test_repulsive_inside_minimum(self):
        kern = _kernel(["OT", "OT"], [0.0, 0.0])
        pos, pairs = _pair(2.2)
        energies, forces = kern.compute(pos, pairs)
        assert energies.lj > 0
        assert forces[0, 0] < 0  # pushed apart
        assert forces[1, 0] > 0

    def test_zero_beyond_cutoff(self):
        kern = _kernel(["OT", "OT"], [0.0, 0.0])
        pos, pairs = _pair(10.5)
        energies, forces = kern.compute(pos, pairs)
        assert energies.lj == 0.0
        assert np.allclose(forces, 0.0)
        assert kern.last_pair_count == 0

    def test_switched_continuity_at_cutoff(self):
        kern = _kernel(["OT", "OT"], [0.0, 0.0])
        e_in, _ = kern.compute(*_pair(10.0 - 1e-7))
        e_out, _ = kern.compute(*_pair(10.0 + 1e-7))
        assert abs(e_in.lj - e_out.lj) < 1e-8


class TestShiftElectrostatics:
    def test_small_r_close_to_bare_coulomb(self):
        q = [1.0, -1.0]
        kern = _kernel(["OT", "OT"], q)
        r = 1.5
        energies, _ = kern.compute(*_pair(r))
        bare = -COULOMB_CONSTANT / r
        # shift factor (1-(r/rc)^2)^2 at r=1.5, rc=10
        expect = bare * (1 - (r / 10) ** 2) ** 2
        assert energies.elec == pytest.approx(expect, rel=1e-12)

    def test_zero_at_cutoff(self):
        kern = _kernel(["OT", "OT"], [1.0, -1.0])
        energies, forces = kern.compute(*_pair(10.0))
        assert energies.elec == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(forces, 0.0, atol=1e-10)

    def test_like_charges_repel(self):
        kern = _kernel(["OT", "OT"], [0.5, 0.5])
        _, forces = kern.compute(*_pair(3.0))
        assert forces[0, 0] < 0 and forces[1, 0] > 0


class TestEwaldDirect:
    def test_matches_erfc_formula(self):
        alpha = 0.31
        kern = _kernel(["OT", "OT"], [0.8, -0.4], elec_mode="ewald", alpha=alpha)
        r = 4.0
        energies, _ = kern.compute(*_pair(r))
        expect = COULOMB_CONSTANT * 0.8 * (-0.4) * erfc(alpha * r) / r
        assert energies.elec == pytest.approx(expect, rel=1e-12)

    def test_forces_match_gradient(self):
        alpha = 0.31
        kern = _kernel(
            ["OT", "HT", "OT"], [0.8, -0.3, -0.5], elec_mode="ewald", alpha=alpha
        )
        rng = np.random.default_rng(4)
        pos = np.array([[5.0, 5, 5], [7.0, 5.5, 5], [6.0, 7.5, 6]])
        pos += rng.normal(scale=0.1, size=pos.shape)
        pairs = np.array([[0, 1], [0, 2], [1, 2]], dtype=np.int64)
        _, forces = kern.compute(pos, pairs)
        h = 1e-6
        for i in range(3):
            for d in range(3):
                pp = pos.copy(); pp[i, d] += h
                pm = pos.copy(); pm[i, d] -= h
                ep, _ = kern.compute(pp, pairs)
                em, _ = kern.compute(pm, pairs)
                fd = -(ep.total - em.total) / (2 * h)
                assert forces[i, d] == pytest.approx(fd, abs=1e-5)


class TestShiftGradients:
    def test_forces_match_gradient(self):
        kern = _kernel(["OT", "HT", "CT2"], [0.6, -0.2, -0.4])
        pos = np.array([[5.0, 5, 5], [7.5, 5.5, 5], [6.0, 8.5, 6]])
        pairs = np.array([[0, 1], [0, 2], [1, 2]], dtype=np.int64)
        _, forces = kern.compute(pos, pairs)
        h = 1e-6
        for i in range(3):
            for d in range(3):
                pp = pos.copy(); pp[i, d] += h
                pm = pos.copy(); pm[i, d] -= h
                ep, _ = kern.compute(pp, pairs)
                em, _ = kern.compute(pm, pairs)
                fd = -(ep.total - em.total) / (2 * h)
                assert forces[i, d] == pytest.approx(fd, abs=1e-5)


class TestBookkeeping:
    def test_empty_pairs(self):
        kern = _kernel(["OT", "OT"], [0.0, 0.0])
        energies, forces = kern.compute(
            np.zeros((2, 3)), np.empty((0, 2), dtype=np.int64)
        )
        assert energies.total == 0.0
        assert np.allclose(forces, 0.0)
        assert kern.last_pair_count == 0

    def test_pair_count_filters_skin(self):
        kern = _kernel(["OT", "OT", "OT"], [0.0, 0.0, 0.0])
        pos = np.array([[5.0, 5, 5], [9.0, 5, 5], [16.0, 5, 5]])
        pairs = np.array([[0, 1], [0, 2]], dtype=np.int64)  # 0-2 at 11 A: in skin
        kern.compute(pos, pairs)
        assert kern.last_pair_count == 1

    def test_newton_third_law(self):
        kern = _kernel(["OT", "HT", "CT2"], [0.6, -0.2, -0.4])
        pos = np.array([[5.0, 5, 5], [7.5, 5.5, 5], [6.0, 8.5, 6]])
        pairs = np.array([[0, 1], [0, 2], [1, 2]], dtype=np.int64)
        _, forces = kern.compute(pos, pairs)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-10)
