"""Thermostats: rescaling behaviour and relaxation direction."""

import numpy as np
import pytest

from repro.md import BerendsenThermostat, VelocityRescale, temperature


@pytest.fixture()
def hot_system(rng):
    masses = np.full(60, 12.0)
    v = rng.normal(size=(60, 3)) * 10.0
    return masses, v


class TestVelocityRescale:
    def test_hits_target_exactly(self, hot_system):
        masses, v = hot_system
        new_v = VelocityRescale(target=300.0).apply(masses, v)
        assert temperature(masses, new_v) == pytest.approx(300.0, rel=1e-12)

    def test_zero_velocities_unchanged(self):
        masses = np.full(4, 12.0)
        v = np.zeros((4, 3))
        assert np.allclose(VelocityRescale(300.0).apply(masses, v), 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VelocityRescale(target=0.0)

    def test_preserves_direction(self, hot_system):
        masses, v = hot_system
        new_v = VelocityRescale(target=100.0).apply(masses, v)
        cos = np.sum(v * new_v) / (np.linalg.norm(v) * np.linalg.norm(new_v))
        assert cos == pytest.approx(1.0)


class TestBerendsen:
    def test_moves_towards_target(self, hot_system):
        masses, v = hot_system
        t0 = temperature(masses, v)
        thermostat = BerendsenThermostat(target=300.0, tau=0.1)
        new_v = thermostat.apply(masses, v, dt=0.001)
        t1 = temperature(masses, new_v)
        assert (t0 - 300.0) * (t0 - t1) > 0  # moved towards target
        assert abs(t1 - 300.0) < abs(t0 - 300.0)

    def test_weaker_than_rescale(self, hot_system):
        masses, v = hot_system
        berendsen = BerendsenThermostat(target=300.0, tau=0.5).apply(masses, v, dt=0.001)
        assert abs(temperature(masses, berendsen) - 300.0) > 1.0  # gentle

    def test_at_target_is_identity(self, hot_system):
        masses, v = hot_system
        v = VelocityRescale(300.0).apply(masses, v)
        out = BerendsenThermostat(target=300.0).apply(masses, v, dt=0.001)
        assert np.allclose(out, v, rtol=1e-10)

    def test_longer_tau_is_gentler(self, hot_system):
        masses, v = hot_system
        fast = BerendsenThermostat(300.0, tau=0.01).apply(masses, v, dt=0.001)
        slow = BerendsenThermostat(300.0, tau=1.0).apply(masses, v, dt=0.001)
        assert abs(temperature(masses, fast) - 300.0) < abs(
            temperature(masses, slow) - 300.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BerendsenThermostat(target=-1.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(target=300.0, tau=0.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0).apply(np.ones(2), np.ones((2, 3)), dt=0.0)

    def test_converges_over_many_applications(self, hot_system):
        masses, v = hot_system
        thermostat = BerendsenThermostat(target=300.0, tau=0.02)
        for _ in range(200):
            v = thermostat.apply(masses, v, dt=0.001)
        assert temperature(masses, v) == pytest.approx(300.0, rel=1e-3)


class TestConstraintAwareness:
    """Regression: a thermostat measuring T with the wrong DOF count drives
    a constrained system to target * (3N-3)/(3N-3-n_constraints)."""

    def test_rescale_with_constraints_hits_true_target(self, hot_system):
        masses, v = hot_system
        n_constraints = 60
        out = VelocityRescale(target=300.0, n_constraints=n_constraints).apply(masses, v)
        assert temperature(masses, out, n_constraints=n_constraints) == pytest.approx(
            300.0, rel=1e-12
        )

    def test_berendsen_with_constraints_converges_to_true_target(self, hot_system):
        masses, v = hot_system
        n_constraints = 60
        thermostat = BerendsenThermostat(300.0, tau=0.01, n_constraints=n_constraints)
        for _ in range(300):
            v = thermostat.apply(masses, v, dt=0.001)
        assert temperature(masses, v, n_constraints=n_constraints) == pytest.approx(
            300.0, rel=1e-3
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            VelocityRescale(300.0, n_constraints=-1)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0, n_constraints=-2)
