"""Periodic box: minimum image, wrapping, cutoff validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import PeriodicBox

finite = st.floats(
    min_value=-500.0, max_value=500.0, allow_nan=False, allow_infinity=False
)


def test_lengths_and_volume():
    box = PeriodicBox(10.0, 20.0, 30.0)
    assert np.allclose(box.lengths, [10, 20, 30])
    assert box.volume == pytest.approx(6000.0)


def test_rejects_nonpositive_edges():
    with pytest.raises(ValueError):
        PeriodicBox(0.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        PeriodicBox(1.0, -2.0, 1.0)


def test_min_image_simple():
    box = PeriodicBox(10.0, 10.0, 10.0)
    dr = np.array([[9.0, 0.0, 0.0]])
    assert np.allclose(box.min_image(dr), [[-1.0, 0.0, 0.0]])


def test_min_image_preserves_small_displacements():
    box = PeriodicBox(10.0, 12.0, 14.0)
    dr = np.array([[1.0, -2.0, 3.0]])
    assert np.allclose(box.min_image(dr), dr)


def test_min_image_half_open_interval():
    """Exactly +L/2 maps to -L/2: the floor form picks the half-open side."""
    box = PeriodicBox(10.0, 10.0, 10.0)
    dr = np.array([[5.0, -5.0, 0.0]])
    assert np.allclose(box.min_image(dr), [[-5.0, -5.0, 0.0]])


def test_min_image_does_not_mutate_input():
    box = PeriodicBox(10.0, 10.0, 10.0)
    dr = np.array([[9.0, 0.0, 0.0]])
    keep = dr.copy()
    box.min_image(dr)
    assert np.array_equal(dr, keep)


def test_wrap_into_box():
    box = PeriodicBox(10.0, 10.0, 10.0)
    pos = np.array([[12.0, -3.0, 25.0]])
    wrapped = box.wrap(pos)
    assert np.all(wrapped >= 0.0)
    assert np.all(wrapped < 10.0)
    assert np.allclose(wrapped, [[2.0, 7.0, 5.0]])


def test_check_cutoff_accepts_half_edge():
    box = PeriodicBox(20.0, 30.0, 40.0)
    box.check_cutoff(10.0)  # exactly half the smallest edge


def test_check_cutoff_rejects_oversized():
    box = PeriodicBox(20.0, 30.0, 40.0)
    with pytest.raises(ValueError):
        box.check_cutoff(10.1)


@given(x=finite, y=finite, z=finite)
@settings(max_examples=80)
def test_min_image_components_bounded(x, y, z):
    box = PeriodicBox(11.0, 13.0, 17.0)
    out = box.min_image(np.array([x, y, z]))
    assert np.all(np.abs(out) <= box.lengths / 2 + 1e-9)


@given(x=finite, y=finite, z=finite)
@settings(max_examples=80)
def test_wrap_is_idempotent(x, y, z):
    box = PeriodicBox(11.0, 13.0, 17.0)
    once = box.wrap(np.array([x, y, z]))
    twice = box.wrap(once)
    assert np.allclose(once, twice, atol=1e-9)


@given(x=finite, y=finite, z=finite)
@settings(max_examples=80)
def test_wrap_preserves_min_image_distance(x, y, z):
    """Wrapping a position never changes minimum-image displacements."""
    box = PeriodicBox(11.0, 13.0, 17.0)
    other = np.array([1.0, 2.0, 3.0])
    p = np.array([x, y, z])
    d1 = np.linalg.norm(box.min_image(p - other))
    d2 = np.linalg.norm(box.min_image(box.wrap(p) - other))
    assert d1 == pytest.approx(d2, abs=1e-6)
