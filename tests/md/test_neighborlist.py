"""Cell-list neighbour search vs brute force; skin/rebuild behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import CutoffScheme, NeighborList, PeriodicBox, brute_force_pairs


def _random_positions(rng, n, box):
    return rng.uniform(0, 1, (n, 3)) * box.lengths


class TestBruteForce:
    def test_two_atoms_within(self):
        box = PeriodicBox(10, 10, 10)
        pos = np.array([[1.0, 1.0, 1.0], [2.0, 1.0, 1.0]])
        pairs = brute_force_pairs(pos, box, 2.0)
        assert pairs.tolist() == [[0, 1]]

    def test_periodic_image_pair(self):
        box = PeriodicBox(10, 10, 10)
        pos = np.array([[0.5, 5.0, 5.0], [9.5, 5.0, 5.0]])
        pairs = brute_force_pairs(pos, box, 1.5)
        assert pairs.tolist() == [[0, 1]]

    def test_empty(self):
        box = PeriodicBox(10, 10, 10)
        pos = np.array([[1.0, 1.0, 1.0], [6.0, 6.0, 6.0]])
        assert len(brute_force_pairs(pos, box, 2.0)) == 0


class TestCellList:
    @pytest.mark.parametrize("n,edge", [(40, 12.0), (120, 18.0), (250, 25.0)])
    def test_matches_brute_force(self, n, edge):
        rng = np.random.default_rng(n)
        box = PeriodicBox(edge, edge * 1.1, edge * 0.9)
        pos = _random_positions(rng, n, box)
        scheme = CutoffScheme(r_cut=4.0, skin=1.0)
        nl = NeighborList(box, scheme)
        pairs = nl.build(pos)
        ref = brute_force_pairs(pos, box, scheme.list_cutoff)
        assert pairs.tolist() == ref.tolist()

    def test_exclusions_removed(self):
        box = PeriodicBox(12, 12, 12)
        pos = np.array([[1.0, 1, 1], [2.0, 1, 1], [3.0, 1, 1]])
        excl = np.array([[0, 1]], dtype=np.int64)
        nl = NeighborList(box, CutoffScheme(r_cut=4.0, skin=0.5), exclusions=excl)
        pairs = set(map(tuple, nl.build(pos)))
        assert (0, 1) not in pairs
        assert (1, 2) in pairs and (0, 2) in pairs

    def test_bad_exclusion_order_rejected(self):
        box = PeriodicBox(12, 12, 12)
        with pytest.raises(ValueError):
            NeighborList(
                box,
                CutoffScheme(r_cut=4.0),
                exclusions=np.array([[1, 0]], dtype=np.int64),
            )

    def test_cutoff_vs_box_validation(self):
        with pytest.raises(ValueError):
            NeighborList(PeriodicBox(6, 6, 6), CutoffScheme(r_cut=4.0))

    def test_unwrapped_positions_handled(self):
        """Positions far outside the box must be binned correctly."""
        box = PeriodicBox(12, 12, 12)
        pos = np.array([[1.0, 1, 1], [2.0, 1, 1]])
        shifted = pos + np.array([36.0, -24.0, 12.0])
        nl = NeighborList(box, CutoffScheme(r_cut=4.0, skin=0.5))
        assert nl.build(shifted).tolist() == [[0, 1]]


class TestRebuild:
    def test_needs_rebuild_initially(self):
        nl = NeighborList(PeriodicBox(12, 12, 12), CutoffScheme(r_cut=4.0, skin=2.0))
        assert nl.needs_rebuild(np.zeros((2, 3)))

    def test_no_rebuild_for_small_motion(self):
        box = PeriodicBox(12, 12, 12)
        pos = np.array([[1.0, 1, 1], [3.0, 1, 1]])
        nl = NeighborList(box, CutoffScheme(r_cut=4.0, skin=2.0))
        nl.build(pos)
        assert not nl.needs_rebuild(pos + 0.4)  # < skin/2 = 1.0

    def test_rebuild_for_large_motion(self):
        box = PeriodicBox(12, 12, 12)
        pos = np.array([[1.0, 1, 1], [3.0, 1, 1]])
        nl = NeighborList(box, CutoffScheme(r_cut=4.0, skin=2.0))
        nl.build(pos)
        moved = pos.copy()
        moved[0, 0] += 1.2  # > skin/2
        assert nl.needs_rebuild(moved)

    def test_ensure_counts_builds(self):
        box = PeriodicBox(12, 12, 12)
        pos = np.array([[1.0, 1, 1], [3.0, 1, 1]])
        nl = NeighborList(box, CutoffScheme(r_cut=4.0, skin=2.0))
        nl.ensure(pos)
        assert nl.n_builds == 1 and nl.last_ensure_rebuilt
        nl.ensure(pos + 0.1)
        assert nl.n_builds == 1 and not nl.last_ensure_rebuilt

    def test_zero_skin_always_rebuilds(self):
        box = PeriodicBox(12, 12, 12)
        pos = np.array([[1.0, 1, 1], [3.0, 1, 1]])
        nl = NeighborList(box, CutoffScheme(r_cut=4.0, skin=0.0))
        nl.build(pos)
        assert nl.needs_rebuild(pos)

    def test_adopt_mirrors_builder_state(self):
        """A mirroring list behaves exactly like one that built locally."""
        box = PeriodicBox(12, 12, 12)
        pos = np.array([[1.0, 1, 1], [3.0, 1, 1], [5.0, 5, 5]])
        scheme = CutoffScheme(r_cut=4.0, skin=2.0)
        builder = NeighborList(box, scheme)
        pairs = builder.ensure(pos)

        mirror = NeighborList(box, scheme)
        mirror.adopt(pairs, builder._ref_positions, builder.last_candidates, True)
        assert mirror.pairs is pairs
        assert mirror.last_ensure_rebuilt and mirror.last_candidates == builder.last_candidates
        assert mirror.n_builds == 0  # adopt is not a real build
        # rebuild decisions now track the builder's reference positions
        assert not mirror.needs_rebuild(pos + 0.4)
        moved = pos.copy()
        moved[0, 0] += 1.2
        assert mirror.needs_rebuild(moved)


class TestCellPairMemo:
    def test_same_grid_returns_cached_object(self):
        from repro.md.neighborlist import _neighbour_cell_pairs

        a = _neighbour_cell_pairs(np.array([4, 5, 6]))
        b = _neighbour_cell_pairs(np.array([4, 5, 6]))
        assert a is b  # lru_cache hit, no recomputation
        assert not a.flags.writeable  # shared result must be immutable

    def test_distinct_grids_differ(self):
        from repro.md.neighborlist import _neighbour_cell_pairs

        a = _neighbour_cell_pairs(np.array([4, 5, 6]))
        c = _neighbour_cell_pairs(np.array([4, 5, 7]))
        assert a is not c

    def test_candidate_counter_set(self):
        rng = np.random.default_rng(0)
        box = PeriodicBox(15, 15, 15)
        pos = _random_positions(rng, 60, box)
        nl = NeighborList(box, CutoffScheme(r_cut=4.0, skin=1.0))
        pairs = nl.build(pos)
        assert nl.last_candidates >= len(pairs)


@given(seed=st.integers(0, 10_000), n=st.integers(10, 80))
@settings(max_examples=25, deadline=None)
def test_cell_list_equals_brute_force_property(seed, n):
    rng = np.random.default_rng(seed)
    box = PeriodicBox(14.0, 16.0, 13.0)
    pos = rng.uniform(-20, 40, (n, 3))  # deliberately unwrapped
    scheme = CutoffScheme(r_cut=5.0, skin=1.0)
    nl = NeighborList(box, scheme)
    assert nl.build(pos).tolist() == brute_force_pairs(pos, box, scheme.list_cutoff).tolist()


class TestStepPrefilter:
    """The certified candidate prefilter: sound, and void without proof."""

    def _setup(self, n=80, seed=3):
        rng = np.random.default_rng(seed)
        box = PeriodicBox(15, 15, 15)
        pos = _random_positions(rng, n, box)
        nl = NeighborList(box, CutoffScheme(r_cut=4.0, skin=1.0))
        nl.build(pos)
        return rng, nl, pos

    def test_hit_right_after_build(self):
        _, nl, pos = self._setup()
        hit = nl.step_prefilter(pos, nl.pairs)
        assert hit is not None
        ref_d, bound = hit
        assert len(ref_d) == len(nl.pairs)
        # zero displacement since build: the bound is r_cut + epsilon
        assert bound == pytest.approx(nl.scheme.r_cut, abs=1e-5)

    def test_certified_after_needs_rebuild_check(self):
        rng, nl, pos = self._setup()
        moved = pos + rng.normal(scale=0.05, size=pos.shape)
        assert not nl.needs_rebuild(moved)
        hit = nl.step_prefilter(moved, nl.pairs)
        assert hit is not None
        _, bound = hit
        assert bound > nl.scheme.r_cut  # displacement widened the bound

    def test_unseen_positions_object_voids_the_certificate(self):
        _, nl, pos = self._setup()
        assert nl.step_prefilter(pos.copy(), nl.pairs) is None

    def test_foreign_pair_array_voids_the_certificate(self):
        _, nl, pos = self._setup()
        assert nl.step_prefilter(pos, nl.pairs.copy()) is None
        assert nl.step_prefilter(pos, nl.pairs[:-1]) is None

    def test_prefilter_keeps_every_true_pair(self):
        """Dropped rows provably fail the exact r <= r_cut test."""
        rng, nl, pos = self._setup(n=120)
        for _ in range(5):
            moved = pos + rng.normal(scale=0.08, size=pos.shape)
            if nl.needs_rebuild(moved):
                nl.build(moved)
            hit = nl.step_prefilter(moved, nl.pairs)
            assert hit is not None
            ref_d, bound = hit
            pairs = nl.pairs
            lo, hi = pairs[:, 0], pairs[:, 1]
            dr = nl.box.min_image(moved[lo] - moved[hi])
            d2 = np.einsum("ij,ij->i", dr, dr)
            within = d2 <= nl.scheme.r_cut**2
            # every within-cutoff pair survives the prefilter
            assert np.all(ref_d[within] <= bound)
            pos = moved

