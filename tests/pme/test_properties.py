"""Property-based physics invariants of the PME machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import PeriodicBox
from repro.pme import PME, choose_alpha, self_energy

BOX = PeriodicBox(12.0, 12.0, 12.0)


def _pme():
    return PME(BOX, (16, 16, 16), alpha=0.55, order=4)


@st.composite
def charge_clouds(draw):
    n = draw(st.integers(4, 16))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0.5, 11.5, (n, 3))
    q = rng.normal(size=n)
    return pos, q - q.mean()


class TestScalingInvariants:
    @given(cloud=charge_clouds(), scale=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=15, deadline=None)
    def test_reciprocal_energy_quadratic_in_charge(self, cloud, scale):
        pos, q = cloud
        pme = _pme()
        e1 = pme.reciprocal(pos, q).energy
        e2 = pme.reciprocal(pos, scale * q).energy
        assert e2 == pytest.approx(scale**2 * e1, rel=1e-9, abs=1e-12)

    @given(cloud=charge_clouds())
    @settings(max_examples=15, deadline=None)
    def test_reciprocal_energy_nonnegative(self, cloud):
        """The reciprocal sum is a sum of psi(m)|S(m)|^2 with psi >= 0."""
        pos, q = cloud
        assert _pme().reciprocal(pos, q).energy >= 0.0

    @given(cloud=charge_clouds())
    @settings(max_examples=10, deadline=None)
    def test_net_force_bounded_by_interpolation_error(self, cloud):
        """Mesh interpolation breaks exact momentum conservation; the net
        force must stay a small fraction of the total force magnitude,
        shrinking with spline order."""
        pos, q = cloud
        fine = PME(BOX, (32, 32, 32), alpha=0.55, order=6)
        forces = fine.reciprocal(pos, q).forces
        scale = np.abs(forces).sum() + 1e-12
        assert np.abs(forces.sum(axis=0)).max() < 1e-4 * scale

    @given(
        cloud=charge_clouds(),
        shift=st.tuples(
            st.floats(-20, 20), st.floats(-20, 20), st.floats(-20, 20)
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_translation_invariance_within_mesh_error(self, cloud, shift):
        """Shifting all charges changes the energy only at the level of
        the B-spline discretization error."""
        pos, q = cloud
        fine = PME(BOX, (32, 32, 32), alpha=0.55, order=6)
        e1 = fine.reciprocal(pos, q).energy
        e2 = fine.reciprocal(pos + np.array(shift), q).energy
        assert e2 == pytest.approx(e1, rel=1e-5, abs=1e-6)


class TestSelfEnergyProperties:
    @given(
        seed=st.integers(0, 1000),
        alpha=st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=30)
    def test_linear_in_alpha(self, seed, alpha):
        rng = np.random.default_rng(seed)
        q = rng.normal(size=10)
        assert self_energy(q, 2 * alpha) == pytest.approx(2 * self_energy(q, alpha))

    @given(r_cut=st.floats(min_value=5.0, max_value=15.0))
    @settings(max_examples=20)
    def test_choose_alpha_monotone_in_cutoff(self, r_cut):
        assert choose_alpha(r_cut) > choose_alpha(r_cut + 1.0)
