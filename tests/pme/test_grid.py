"""Charge mesh: spreading conservation, slab consistency, force interpolation."""

import numpy as np
import pytest

from repro.md import PeriodicBox
from repro.pme import ChargeMesh

BOX = PeriodicBox(12.0, 10.0, 14.0)
GRID = (12, 10, 14)


@pytest.fixture()
def mesh():
    return ChargeMesh(BOX, GRID, order=4)


@pytest.fixture()
def cloud(rng):
    n = 17
    pos = rng.uniform(0, 1, (n, 3)) * BOX.lengths
    q = rng.normal(size=n)
    return pos, q


class TestSpread:
    def test_total_charge_conserved(self, mesh, cloud):
        pos, q = cloud
        grid = mesh.spread(pos, q)
        assert grid.sum() == pytest.approx(q.sum(), abs=1e-10)

    def test_grid_shape(self, mesh, cloud):
        pos, q = cloud
        assert mesh.spread(pos, q).shape == GRID

    def test_single_charge_at_gridpoint(self, mesh):
        # an atom exactly on a grid point with order 4: weights M4(1..3)
        pos = np.array([[3.0, 2.0, 5.0]])  # spacing is exactly 1.0 per axis
        q = np.array([1.0])
        grid = mesh.spread(pos, q)
        assert grid.sum() == pytest.approx(1.0)
        # the peak weight is M4(2)^3 = (2/3)^3
        assert grid.max() == pytest.approx((2.0 / 3.0) ** 3, rel=1e-9)

    def test_slabs_tile_full_grid(self, mesh, cloud):
        pos, q = cloud
        full = mesh.spread(pos, q)
        parts = []
        bounds = [0, 3, 7, 12]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            parts.append(mesh.spread(pos, q, x_range=(lo, hi - lo)))
        assert np.allclose(np.concatenate(parts, axis=0), full, atol=1e-12)

    def test_wrapping_slab(self, mesh, cloud):
        """A slab range that wraps modulo Kx."""
        pos, q = cloud
        full = mesh.spread(pos, q)
        wrapped = mesh.spread(pos, q, x_range=(10, 4))  # planes 10,11,0,1
        expect = np.concatenate([full[10:], full[:2]], axis=0)
        assert np.allclose(wrapped, expect, atol=1e-12)

    def test_workload_counts(self, mesh, cloud):
        pos, q = cloud
        mesh.spread(pos, q)
        wl = mesh.last_workload
        assert wl.n_atoms == len(pos)
        assert wl.stencil_points == len(pos) * 64
        assert wl.scattered_points == len(pos) * 64

    def test_slab_workload_smaller(self, mesh, cloud):
        pos, q = cloud
        mesh.spread(pos, q, x_range=(0, 3))
        assert mesh.last_workload.scattered_points < len(pos) * 64

    def test_invalid_slab_rejected(self, mesh, cloud):
        pos, q = cloud
        with pytest.raises(ValueError):
            mesh.spread(pos, q, x_range=(0, 0))

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            ChargeMesh(BOX, (2, 10, 14), order=4)


class TestInterpolate:
    def test_slab_partial_forces_sum_to_full(self, mesh, cloud, rng):
        pos, q = cloud
        phi = rng.normal(size=GRID)
        full = mesh.interpolate_forces(pos, q, phi)
        partial = np.zeros_like(full)
        bounds = [0, 3, 7, 12]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            partial += mesh.interpolate_forces(
                pos, q, phi[lo:hi], x_range=(lo, hi - lo)
            )
        assert np.allclose(partial, full, atol=1e-10)

    def test_shape_mismatch_rejected(self, mesh, cloud, rng):
        pos, q = cloud
        with pytest.raises(ValueError):
            mesh.interpolate_forces(pos, q, rng.normal(size=(3, 10, 14)))

    def test_constant_phi_gives_zero_force(self, mesh, cloud):
        """A flat potential exerts no force (derivative weights sum to 0)."""
        pos, q = cloud
        phi = np.ones(GRID)
        forces = mesh.interpolate_forces(pos, q, phi)
        assert np.allclose(forces, 0.0, atol=1e-10)

    def test_zero_charge_zero_force(self, mesh, rng):
        pos = rng.uniform(0, 1, (5, 3)) * BOX.lengths
        phi = rng.normal(size=GRID)
        forces = mesh.interpolate_forces(pos, np.zeros(5), phi)
        assert np.allclose(forces, 0.0)
