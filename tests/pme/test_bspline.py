"""Cardinal B-splines: values, partition of unity, derivatives, moduli."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pme import bspline_moduli, bspline_weights, mn_values


class TestMnValues:
    def test_m2_triangle(self):
        u = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])
        expect = np.array([0.0, 0.5, 1.0, 0.5, 0.0, 0.0])
        assert np.allclose(mn_values(u, 2), expect)

    def test_m4_peak_value(self):
        # M_4(2) = 2/3 (cubic B-spline centre value)
        assert mn_values(np.array([2.0]), 4)[0] == pytest.approx(2.0 / 3.0)

    def test_m4_symmetry(self):
        u = np.linspace(0, 4, 101)
        v = mn_values(u, 4)
        assert np.allclose(v, v[::-1], atol=1e-12)

    def test_support(self):
        for order in (2, 3, 4, 6):
            vals = mn_values(np.array([-0.5, 0.0, order, order + 0.5]), order)
            assert np.allclose(vals, 0.0, atol=1e-12)

    def test_nonnegative(self):
        for order in (2, 3, 4, 5, 6):
            u = np.linspace(-1, order + 1, 200)
            assert np.all(mn_values(u, order) >= -1e-12)

    def test_integral_is_one(self):
        for order in (2, 4, 6):
            u = np.linspace(0, order, 4001)
            v = mn_values(u, order)
            assert np.trapezoid(v, u) == pytest.approx(1.0, abs=1e-6)

    def test_rejects_order_one(self):
        with pytest.raises(ValueError):
            mn_values(np.array([0.5]), 1)

    def test_recursion_consistency(self):
        """M_n(u) = u/(n-1) M_{n-1}(u) + (n-u)/(n-1) M_{n-1}(u-1)."""
        u = np.linspace(0.1, 3.9, 50)
        lhs = mn_values(u, 4)
        rhs = u / 3 * mn_values(u, 3) + (4 - u) / 3 * mn_values(u - 1, 3)
        assert np.allclose(lhs, rhs, atol=1e-12)


class TestWeights:
    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_partition_of_unity(self, order):
        frac = np.linspace(0, 0.999, 57)
        w, _ = bspline_weights(frac, order)
        assert np.allclose(w.sum(axis=-1), 1.0, atol=1e-12)

    @pytest.mark.parametrize("order", [4, 6])
    def test_derivative_sums_to_zero(self, order):
        frac = np.linspace(0, 0.999, 37)
        _, dw = bspline_weights(frac, order)
        assert np.allclose(dw.sum(axis=-1), 0.0, atol=1e-12)

    @pytest.mark.parametrize("order", [4, 6])
    def test_derivative_matches_finite_difference(self, order):
        h = 1e-6
        frac = np.array([0.123, 0.5, 0.876])
        wp, _ = bspline_weights(frac + h, order)
        wm, _ = bspline_weights(frac - h, order)
        _, dw = bspline_weights(frac, order)
        assert np.allclose(dw, (wp - wm) / (2 * h), atol=1e-5)

    def test_weights_nonnegative(self):
        frac = np.linspace(0, 0.999, 100)
        w, _ = bspline_weights(frac, 4)
        assert np.all(w >= -1e-12)

    @given(st.floats(min_value=0.0, max_value=0.999999))
    @settings(max_examples=50)
    def test_partition_of_unity_property(self, frac):
        w, _ = bspline_weights(np.array([frac]), 4)
        assert w.sum() == pytest.approx(1.0, abs=1e-10)


class TestModuli:
    def test_positive(self):
        b = bspline_moduli(32, 4)
        assert np.all(b > 0)
        assert b.shape == (32,)

    def test_dc_component_is_one(self):
        # at m = 0 the denominator is sum of M_n(k) = 1
        b = bspline_moduli(32, 4)
        assert b[0] == pytest.approx(1.0)

    def test_symmetry(self):
        b = bspline_moduli(30, 4)
        assert np.allclose(b[1:], b[1:][::-1], atol=1e-10)

    def test_rejects_odd_order(self):
        with pytest.raises(ValueError):
            bspline_moduli(32, 5)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            bspline_moduli(2, 4)

    def test_exactness_for_plane_wave(self):
        """|b(m)|^2 must make B-spline interpolation exact for e^{2pi i m u/K}.

        Interpolating exp(2 pi i m k / K) with splines and multiplying the
        spectrum by b(m) recovers the exact coefficient; equivalently
        b(m) * sum_k M_n(k+1) e^{2 pi i m k/K} has modulus 1.
        """
        order, size = 4, 16
        from repro.pme.bspline import mn_values as mv

        k = np.arange(order - 1)
        mn = mv(k + 1.0, order)
        for m in range(size):
            denom = np.sum(mn * np.exp(2j * np.pi * m * k / size))
            assert bspline_moduli(size, order)[m] * abs(denom) ** 2 == pytest.approx(
                1.0, rel=1e-10
            )
