"""Ewald pieces: alpha selection, self energy, exclusion corrections."""

import numpy as np
import pytest
from scipy.special import erf, erfc

from repro.md import PeriodicBox
from repro.md.units import COULOMB_CONSTANT
from repro.pme import choose_alpha, exclusion_correction, self_energy


class TestChooseAlpha:
    def test_hits_tolerance(self):
        alpha = choose_alpha(10.0, 1e-5)
        assert erfc(alpha * 10.0) == pytest.approx(1e-5, rel=1e-3)

    def test_tighter_tolerance_bigger_alpha(self):
        assert choose_alpha(10.0, 1e-8) > choose_alpha(10.0, 1e-4)

    def test_scales_inversely_with_cutoff(self):
        a10 = choose_alpha(10.0)
        a5 = choose_alpha(5.0)
        assert a5 == pytest.approx(2 * a10, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_alpha(0.0)
        with pytest.raises(ValueError):
            choose_alpha(10.0, 2.0)


class TestSelfEnergy:
    def test_formula(self):
        q = np.array([1.0, -2.0, 0.5])
        alpha = 0.4
        expect = -COULOMB_CONSTANT * alpha / np.sqrt(np.pi) * np.sum(q**2)
        assert self_energy(q, alpha) == pytest.approx(expect)

    def test_always_nonpositive(self):
        rng = np.random.default_rng(0)
        assert self_energy(rng.normal(size=50), 0.3) <= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            self_energy(np.array([1.0]), 0.0)


class TestExclusionCorrection:
    BOX = PeriodicBox(20.0, 20.0, 20.0)

    def test_empty(self):
        e, f = exclusion_correction(
            np.zeros((3, 3)),
            np.ones(3),
            np.empty((0, 2), dtype=np.int64),
            self.BOX,
            0.3,
        )
        assert e == 0.0
        assert np.allclose(f, 0.0)

    def test_pair_value(self):
        pos = np.array([[1.0, 1, 1], [2.5, 1, 1]])
        q = np.array([0.5, -0.4])
        excl = np.array([[0, 1]], dtype=np.int64)
        alpha = 0.35
        e, _ = exclusion_correction(pos, q, excl, self.BOX, alpha)
        r = 1.5
        expect = -COULOMB_CONSTANT * 0.5 * (-0.4) * erf(alpha * r) / r
        assert e == pytest.approx(expect, rel=1e-12)

    def test_forces_match_gradient(self):
        pos = np.array([[1.0, 1, 1], [2.2, 1.4, 0.7], [0.4, 2.0, 1.2]])
        q = np.array([0.5, -0.4, 0.3])
        excl = np.array([[0, 1], [1, 2]], dtype=np.int64)
        alpha = 0.35
        _, forces = exclusion_correction(pos, q, excl, self.BOX, alpha)
        h = 1e-6
        for i in range(3):
            for d in range(3):
                pp = pos.copy(); pp[i, d] += h
                pm = pos.copy(); pm[i, d] -= h
                ep, _ = exclusion_correction(pp, q, excl, self.BOX, alpha)
                em, _ = exclusion_correction(pm, q, excl, self.BOX, alpha)
                assert forces[i, d] == pytest.approx(-(ep - em) / (2 * h), abs=1e-6)

    def test_coincident_atoms_rejected(self):
        pos = np.zeros((2, 3))
        with pytest.raises(FloatingPointError):
            exclusion_correction(
                pos, np.ones(2), np.array([[0, 1]], dtype=np.int64), self.BOX, 0.3
            )

    def test_newton_third_law(self):
        pos = np.array([[1.0, 1, 1], [2.2, 1.4, 0.7], [0.4, 2.0, 1.2]])
        q = np.array([0.5, -0.4, 0.3])
        excl = np.array([[0, 1], [0, 2], [1, 2]], dtype=np.int64)
        _, forces = exclusion_correction(pos, q, excl, self.BOX, 0.35)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-12)
