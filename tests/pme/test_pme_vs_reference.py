"""PME against the exact Ewald sum — the central physics validation."""

import numpy as np
import pytest

from repro.md import CutoffScheme, NonbondedKernel, PeriodicBox, default_forcefield
from repro.pme import PME, EwaldReference, influence_function, self_energy


class TestReciprocalAgainstExact:
    def test_energy_matches(self, random_ionic_system):
        pos, q, box = random_ionic_system
        alpha = 0.6
        ref = EwaldReference(box, alpha, kmax=14).compute(pos, q)
        pme = PME(box, (32, 32, 32), alpha, order=6)
        rec = pme.reciprocal(pos, q)
        assert rec.energy == pytest.approx(ref.reciprocal, rel=2e-5)

    def test_higher_order_more_accurate(self, random_ionic_system):
        pos, q, box = random_ionic_system
        alpha = 0.6
        exact = EwaldReference(box, alpha, kmax=14).compute(pos, q).reciprocal
        err4 = abs(PME(box, (24, 24, 24), alpha, order=4).reciprocal(pos, q).energy - exact)
        err6 = abs(PME(box, (24, 24, 24), alpha, order=6).reciprocal(pos, q).energy - exact)
        assert err6 < err4

    def test_finer_grid_more_accurate(self, random_ionic_system):
        pos, q, box = random_ionic_system
        alpha = 0.6
        exact = EwaldReference(box, alpha, kmax=14).compute(pos, q).reciprocal
        err_c = abs(PME(box, (16, 16, 16), alpha, order=4).reciprocal(pos, q).energy - exact)
        err_f = abs(PME(box, (40, 40, 40), alpha, order=4).reciprocal(pos, q).energy - exact)
        assert err_f < err_c

    def test_forces_match_exact(self, random_ionic_system):
        pos, q, box = random_ionic_system
        alpha = 0.6
        ref = EwaldReference(box, alpha, kmax=14).compute(pos, q)
        pme = PME(box, (40, 40, 40), alpha, order=6)
        rec = pme.reciprocal(pos, q)
        # reciprocal-space forces only: subtract direct+self-free ref parts
        # by recomputing the direct contribution
        kern = NonbondedKernel(
            default_forcefield(),
            ["OT"] * len(q),
            q,
            box,
            CutoffScheme(r_cut=5.4, skin=0.0),
            elec_mode="ewald",
            ewald_alpha=alpha,
        )
        # exact reference direct part uses ALL pairs at min image; here we
        # only compare reciprocal forces via total-force difference below
        assert rec.forces.shape == ref.forces.shape


class TestTotalElectrostatics:
    def _pme_total(self, pos, q, box, alpha, grid, r_cut):
        """direct(erfc over all pairs) + reciprocal + self via the library."""
        from repro.md.neighborlist import brute_force_pairs

        kern = NonbondedKernel(
            default_forcefield(),
            ["OT"] * len(q),
            q,
            box,
            CutoffScheme(r_cut=r_cut, skin=0.0),
            elec_mode="ewald",
            ewald_alpha=alpha,
        )
        pairs = brute_force_pairs(pos, box, r_cut)
        direct, f_direct = kern.compute(pos, pairs)
        pme = PME(box, grid, alpha, order=6)
        rec = pme.reciprocal(pos, q)
        e = direct.elec + rec.energy + self_energy(q, alpha)
        return e, f_direct + rec.forces

    def test_total_matches_reference(self, random_ionic_system):
        pos, q, box = random_ionic_system
        alpha = 0.65
        ref = EwaldReference(box, alpha, kmax=16).compute(pos, q)
        e, _ = self._pme_total(pos, q, box, alpha, (40, 40, 40), r_cut=5.4)
        assert e == pytest.approx(ref.total, rel=2e-4)

    def test_alpha_invariance(self, random_ionic_system):
        """The physical energy must not depend on the splitting parameter."""
        pos, q, box = random_ionic_system
        e1, _ = self._pme_total(pos, q, box, 0.62, (44, 44, 44), r_cut=5.4)
        e2, _ = self._pme_total(pos, q, box, 0.80, (44, 44, 44), r_cut=5.4)
        assert e1 == pytest.approx(e2, rel=5e-4)

    def test_translation_invariance(self, random_ionic_system):
        pos, q, box = random_ionic_system
        alpha = 0.65
        e1, _ = self._pme_total(pos, q, box, alpha, (32, 32, 32), r_cut=5.4)
        e2, _ = self._pme_total(
            pos + np.array([1.7, -2.3, 0.9]), q, box, alpha, (32, 32, 32), r_cut=5.4
        )
        assert e1 == pytest.approx(e2, rel=1e-5)


class TestReferenceSelfConsistency:
    def test_reference_forces_match_gradient(self, random_ionic_system):
        pos, q, box = random_ionic_system
        ref_calc = EwaldReference(box, 0.6, kmax=10)
        result = ref_calc.compute(pos, q)
        h = 1e-5
        rng = np.random.default_rng(5)
        for _ in range(4):
            i = int(rng.integers(len(pos)))
            d = int(rng.integers(3))
            pp = pos.copy(); pp[i, d] += h
            pm = pos.copy(); pm[i, d] -= h
            fd = -(ref_calc.compute(pp, q).total - ref_calc.compute(pm, q).total) / (2 * h)
            assert result.forces[i, d] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_reference_kmax_converged(self, random_ionic_system):
        pos, q, box = random_ionic_system
        e10 = EwaldReference(box, 0.6, kmax=10).compute(pos, q).reciprocal
        e14 = EwaldReference(box, 0.6, kmax=14).compute(pos, q).reciprocal
        assert e10 == pytest.approx(e14, rel=1e-6)

    def test_reference_validation(self):
        box = PeriodicBox(10, 10, 10)
        with pytest.raises(ValueError):
            EwaldReference(box, 0.0)
        with pytest.raises(ValueError):
            EwaldReference(box, 0.5, kmax=0)


class TestInfluenceFunction:
    def test_dc_is_zero(self):
        box = PeriodicBox(10, 12, 14)
        psi = influence_function(box, (10, 12, 14), 4, 0.4)
        assert psi[0, 0, 0] == 0.0

    def test_all_nonnegative(self):
        box = PeriodicBox(10, 12, 14)
        psi = influence_function(box, (10, 12, 14), 4, 0.4)
        assert np.all(psi >= 0)

    def test_alpha_validation(self):
        box = PeriodicBox(10, 12, 14)
        with pytest.raises(ValueError):
            influence_function(box, (10, 12, 14), 4, -0.1)

    def test_spectrum_energy_helper(self, random_ionic_system):
        pos, q, box = random_ionic_system
        pme = PME(box, (24, 24, 24), 0.6, order=4)
        grid = pme.mesh.spread(pos, q)
        s = np.fft.fftn(grid)
        assert pme.energy_from_spectrum(s) == pytest.approx(
            pme.reciprocal(pos, q).energy, rel=1e-12
        )
        with pytest.raises(ValueError):
            pme.energy_from_spectrum(s[:-1])
