"""The shared-compute cache is a pure wall-clock optimization.

Three guarantees, each load-bearing for the replicated-data dedup layer
(:mod:`repro.parallel.shared`):

1. energies and trajectories are *bit-identical* with the cache on or
   off (not merely close — adopted results are the builder's arrays);
2. every rank's virtual timeline is bit-identical on or off — the cache
   must change who performs a numpy computation, never what any rank
   charges;
3. it actually deduplicates: one real neighbour-list build per rebuild
   event regardless of the simulated rank count, proven by the
   process-wide :data:`~repro.instrument.counters.NEIGHBOR_BUILDS`
   counter.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
from repro.instrument.counters import NEIGHBOR_BUILDS
from repro.md import CutoffScheme, MDSystem
from repro.parallel import MDRunConfig, RunOptions, SharedComputeCache, run_parallel_md

CFG = MDRunConfig(n_steps=4, dt=0.0004)


def _run(system, pos, p, shared_compute):
    spec = ClusterSpec(n_ranks=p, network=tcp_gigabit_ethernet())
    return run_parallel_md(
        system, pos, spec, RunOptions(config=CFG, shared_compute=shared_compute)
    )


class TestBitIdentity:
    @pytest.mark.parametrize("p", [2, 8])
    def test_energies_and_trajectory(self, peptide_system, p):
        system, pos = peptide_system
        on = _run(system, pos, p, True)
        off = _run(system, pos, p, False)
        assert np.array_equal(on.final_positions, off.final_positions)
        assert len(on.energies) == len(off.energies)
        for a, b in zip(on.energies, off.energies):
            assert asdict(a) == asdict(b)  # exact, field by field

    def test_virtual_timelines_p4(self, peptide_system):
        system, pos = peptide_system
        on = _run(system, pos, 4, True)
        off = _run(system, pos, 4, False)
        for t_on, t_off in zip(on.timelines, off.timelines):
            assert set(t_on.phases) == set(t_off.phases)
            for phase in t_on.phases:
                assert t_on.phase_totals(phase) == t_off.phase_totals(phase)
            assert t_on.total_seconds() == t_off.total_seconds()


class TestDeduplication:
    @pytest.fixture()
    def rebuild_every_step_system(self, peptide_system):
        """The peptide system with skin = 0: every step forces a rebuild."""
        system, pos = peptide_system
        fresh = MDSystem(
            system.topology,
            system.forcefield,
            system.box,
            CutoffScheme(r_cut=8.0, skin=0.0),
            electrostatics="pme",
            pme_grid=(16, 16, 16),
        )
        return fresh, pos

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_one_real_build_per_rebuild_event(self, rebuild_every_step_system, p):
        system, pos = rebuild_every_step_system
        before = NEIGHBOR_BUILDS.snapshot()
        _run(system, pos, p, True)
        # skin = 0 rebuilds at every one of the n_steps steps, but the
        # cache performs each build exactly once no matter how many ranks
        assert NEIGHBOR_BUILDS.delta(before) == CFG.n_steps

    def test_without_cache_builds_scale_with_ranks(self, rebuild_every_step_system):
        system, pos = rebuild_every_step_system
        p = 3
        before = NEIGHBOR_BUILDS.snapshot()
        _run(system, pos, p, False)
        assert NEIGHBOR_BUILDS.delta(before) == CFG.n_steps * p

    def test_cache_counters(self, peptide_system):
        system, pos = peptide_system
        spec = ClusterSpec(n_ranks=4, network=tcp_gigabit_ethernet())
        shared = SharedComputeCache()
        # run through the public entry point but keep a handle on the cache
        from repro.parallel import run as run_mod

        original = run_mod.SharedComputeCache
        run_mod.SharedComputeCache = lambda: shared
        try:
            _run(system, pos, 4, True)
        finally:
            run_mod.SharedComputeCache = original
        assert shared.n_real_builds >= 1
        # one rank maintains the list per step; the other 3 mirror it
        assert shared.n_mirrored == 3 * CFG.n_steps
        # one stencil evaluation per step, hit by the other 3 ranks
        assert shared.n_stencils == CFG.n_steps
        assert shared.n_stencil_hits == 3 * CFG.n_steps
