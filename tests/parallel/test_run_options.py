"""The RunOptions surface: one options object, no keyword back door."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
from repro.core.design import DesignPoint
from repro.core.factors import FOCAL_POINT
from repro.parallel import MDRunConfig, RunOptions, run_parallel_md

CFG = MDRunConfig(n_steps=2, dt=0.0004)


def _spec(p=2):
    return ClusterSpec(n_ranks=p, network=tcp_gigabit_ethernet(), seed=11)


class TestRemovedKeywordForm:
    """The deprecated pre-RunOptions keyword surface is gone: TypeError."""

    def test_legacy_kwargs_rejected(self, peptide_system):
        system, pos = peptide_system
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_parallel_md(system, pos, _spec(), middleware="cmpi", config=CFG)

    def test_legacy_positional_middleware_rejected(self, peptide_system):
        system, pos = peptide_system
        with pytest.raises(TypeError, match="RunOptions"):
            run_parallel_md(system, pos, _spec(), "cmpi")

    def test_legacy_middleware_instance_rejected(self, peptide_system):
        from repro.parallel.run import make_middleware

        system, pos = peptide_system
        with pytest.raises(TypeError, match="RunOptions"):
            run_parallel_md(system, pos, _spec(), make_middleware("mpi"))

    def test_non_options_value_rejected(self, peptide_system):
        system, pos = peptide_system
        with pytest.raises(TypeError, match="RunOptions"):
            run_parallel_md(system, pos, _spec(), {"middleware": "mpi"})


class TestRunOptions:
    def test_frozen(self):
        with pytest.raises(Exception):
            RunOptions().middleware = "cmpi"  # type: ignore[misc]

    def test_replace(self):
        base = RunOptions(config=CFG)
        sanitized = base.replace(sanitize=True)
        assert sanitized.sanitize and not base.sanitize
        assert sanitized.config is CFG

    def test_for_point_takes_middleware_from_the_point(self):
        point = DesignPoint(config=FOCAL_POINT, n_ranks=4)
        opts = RunOptions.for_point(point, config=CFG, sanitize=True)
        assert opts.middleware == FOCAL_POINT.middleware
        assert opts.config is CFG
        assert opts.sanitize

    def test_default_options_is_default_run(self, peptide_system):
        """options=None and RunOptions() are the same run."""
        system, pos = peptide_system
        a = run_parallel_md(system, pos, _spec(), RunOptions(config=CFG))
        b = run_parallel_md(system, pos, _spec(), RunOptions(config=CFG).replace())
        assert np.array_equal(a.final_positions, b.final_positions)
