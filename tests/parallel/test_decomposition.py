"""Work decomposition: partitions are exact, contiguous and balanced."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import AtomDecomposition, SlabDecomposition, slice_bonded_tables


class TestAtomDecomposition:
    def test_ranges_partition(self):
        d = AtomDecomposition(10, 3)
        ranges = [d.atom_range(r) for r in range(3)]
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_balance(self):
        d = AtomDecomposition(1000, 7)
        sizes = [hi - lo for lo, hi in (d.atom_range(r) for r in range(7))]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 1000

    def test_owner_of(self):
        d = AtomDecomposition(10, 3)
        owners = [d.owner_of(a) for a in range(10)]
        assert owners == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            AtomDecomposition(2, 3)
        with pytest.raises(ValueError):
            AtomDecomposition(10, 0)

    def test_pair_blocks_partition_pairs(self):
        rng = np.random.default_rng(0)
        n = 50
        d = AtomDecomposition(n, 4)
        # build a sorted pair list
        raw = rng.integers(0, n, size=(300, 2))
        raw = raw[raw[:, 0] < raw[:, 1]]
        order = np.lexsort((raw[:, 1], raw[:, 0]))
        pairs = raw[order]
        blocks = [d.pair_block(pairs, r) for r in range(4)]
        recon = np.concatenate(blocks, axis=0)
        assert np.array_equal(recon, pairs)
        for r, block in enumerate(blocks):
            lo, hi = d.atom_range(r)
            if len(block):
                assert block[:, 0].min() >= lo
                assert block[:, 0].max() < hi

    def test_slice_rows(self):
        d = AtomDecomposition(6, 2)
        arr = np.arange(12).reshape(6, 2)
        assert np.array_equal(d.slice_rows(arr, 1), arr[3:])

    def test_term_slices_partition(self):
        d = AtomDecomposition(10, 3)
        slices = [d.term_slice(17, r) for r in range(3)]
        covered = []
        for s in slices:
            covered += list(range(s.start, s.stop))
        assert covered == list(range(17))


class TestSlabDecomposition:
    def test_plane_ranges_partition(self):
        d = SlabDecomposition(80, 8)
        total = 0
        next_start = 0
        for r in range(8):
            start, count = d.plane_range(r)
            assert start == next_start
            next_start = start + count
            total += count
        assert total == 80

    def test_uneven_split(self):
        d = SlabDecomposition(10, 3)
        counts = [d.plane_range(r)[1] for r in range(3)]
        assert sorted(counts) == [3, 3, 4]

    def test_split_reassembles(self):
        rng = np.random.default_rng(1)
        arr = rng.normal(size=(10, 4, 3))
        d = SlabDecomposition(10, 3)
        parts = d.split(arr, axis=0)
        assert np.allclose(np.concatenate(parts, axis=0), arr)
        parts_y = SlabDecomposition(4, 2).split(arr, axis=1)
        assert np.allclose(np.concatenate(parts_y, axis=1), arr)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlabDecomposition(4, 8)


class TestBondedSlicing:
    def test_slices_partition_all_terms(self, peptide_system):
        system, _ = peptide_system
        tables = system.bonded_tables
        n_ranks = 4
        d = AtomDecomposition(system.n_atoms, n_ranks)
        sliced = [slice_bonded_tables(tables, d, r) for r in range(n_ranks)]
        assert sum(len(s.bond_idx) for s in sliced) == len(tables.bond_idx)
        assert sum(len(s.angle_idx) for s in sliced) == len(tables.angle_idx)
        assert sum(len(s.dihedral_idx) for s in sliced) == len(tables.dihedral_idx)
        assert sum(len(s.improper_idx) for s in sliced) == len(tables.improper_idx)
        assert sum(s.n_terms for s in sliced) == tables.n_terms

    def test_sliced_energies_sum_to_total(self, peptide_system):
        from repro.md.bonded import bonded_energy_forces

        system, pos = peptide_system
        d = AtomDecomposition(system.n_atoms, 3)
        full_e, full_f = bonded_energy_forces(pos, system.box, system.bonded_tables)
        partial_f = np.zeros_like(full_f)
        sums = {k: 0.0 for k in full_e}
        for r in range(3):
            tables_r = slice_bonded_tables(system.bonded_tables, d, r)
            e, f = bonded_energy_forces(pos, system.box, tables_r)
            partial_f += f
            for k in sums:
                sums[k] += e[k]
        for k in sums:
            assert sums[k] == pytest.approx(full_e[k], abs=1e-10)
        assert np.allclose(partial_f, full_f, atol=1e-10)


@given(n=st.integers(1, 500), p=st.integers(1, 16))
@settings(max_examples=40)
def test_block_bounds_property(n, p):
    if n < p:
        with pytest.raises(ValueError):
            AtomDecomposition(n, p)
        return
    d = AtomDecomposition(n, p)
    bounds = d.bounds
    assert bounds[0] == 0 and bounds[-1] == n
    sizes = np.diff(bounds)
    assert sizes.max() - sizes.min() <= 1
