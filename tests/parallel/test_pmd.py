"""Parallel MD == serial reference: the end-to-end correctness gate."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    NodeSpec,
    myrinet_gm,
    score_gigabit_ethernet,
    tcp_gigabit_ethernet,
)
from repro.md.integrator import maxwell_boltzmann_velocities
from repro.parallel import (
    MDRunConfig,
    RunOptions,
    energy_to_vector,
    rank_system_clone,
    run_parallel_md,
    serial_reference_run,
    vector_to_energy,
)


@pytest.fixture(scope="module")
def reference(peptide_system):
    system, pos = peptide_system
    cfg = MDRunConfig(n_steps=4, dt=0.0004)
    rng = np.random.default_rng(cfg.velocity_seed)
    v0 = maxwell_boltzmann_velocities(system.masses, cfg.temperature, rng)
    energies, final_pos = serial_reference_run(rank_system_clone(system), cfg, pos, v0)
    return cfg, energies, final_pos


class TestVectorPacking:
    def test_roundtrip(self):
        from repro.md import EnergyBreakdown

        e = EnergyBreakdown(bond=1.0, lj=-2.0, pme_reciprocal=3.5, pme_self=-7.0)
        assert vector_to_energy(energy_to_vector(e)) == e

    def test_vector_length_matches_fields(self):
        from dataclasses import fields

        from repro.md import EnergyBreakdown

        assert len(energy_to_vector(EnergyBreakdown())) == len(fields(EnergyBreakdown))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MDRunConfig(n_steps=0)
        with pytest.raises(ValueError):
            MDRunConfig(dt=-0.1)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_energies_and_trajectory(self, peptide_system, reference, p):
        system, pos = peptide_system
        cfg, ref_energies, ref_pos = reference
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=p, network=tcp_gigabit_ethernet()),
            RunOptions(config=cfg),
        )
        assert len(res.energies) == cfg.n_steps
        for step in range(cfg.n_steps):
            assert res.energies[step].total == pytest.approx(
                ref_energies[step].total, rel=1e-9, abs=1e-9
            )
        assert np.allclose(res.final_positions, ref_pos, atol=1e-9)

    def test_three_ranks(self, peptide_system, reference):
        system, pos = peptide_system
        cfg, ref_energies, ref_pos = reference
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=3, network=score_gigabit_ethernet()),
            RunOptions(config=cfg),
        )
        assert res.energies[-1].total == pytest.approx(ref_energies[-1].total, rel=1e-9)
        assert np.allclose(res.final_positions, ref_pos, atol=1e-9)

    def test_physics_independent_of_network(self, peptide_system):
        """Virtual time must never leak into the physics."""
        system, pos = peptide_system
        cfg = MDRunConfig(n_steps=3, dt=0.0004)
        finals = []
        for net in (tcp_gigabit_ethernet(), myrinet_gm()):
            res = run_parallel_md(
                system, pos, ClusterSpec(n_ranks=4, network=net), RunOptions(config=cfg)
            )
            finals.append(res.final_positions)
        assert np.array_equal(finals[0], finals[1])

    def test_physics_independent_of_middleware(self, peptide_system):
        system, pos = peptide_system
        cfg = MDRunConfig(n_steps=3, dt=0.0004)
        finals = []
        for mw in ("mpi", "cmpi"):
            res = run_parallel_md(
                system,
                pos,
                ClusterSpec(n_ranks=4, network=tcp_gigabit_ethernet()),
                RunOptions(middleware=mw, config=cfg),
            )
            finals.append(res.final_positions)
        assert np.allclose(finals[0], finals[1], atol=1e-12)

    def test_classic_only_system(self, peptide_system_shift):
        """Without PME the run must still match its serial reference."""
        system, pos = peptide_system_shift
        cfg = MDRunConfig(n_steps=3, dt=0.0004)
        rng = np.random.default_rng(cfg.velocity_seed)
        v0 = maxwell_boltzmann_velocities(system.masses, cfg.temperature, rng)
        ref_e, ref_pos = serial_reference_run(rank_system_clone(system), cfg, pos, v0)
        res = run_parallel_md(
            system, pos,
            ClusterSpec(n_ranks=4, network=tcp_gigabit_ethernet()),
            RunOptions(config=cfg),
        )
        assert res.energies[-1].total == pytest.approx(ref_e[-1].total, rel=1e-9)
        assert res.energies[-1].pme_total == 0.0
        assert np.allclose(res.final_positions, ref_pos, atol=1e-9)


class TestTimelines:
    def test_phases_present(self, peptide_system):
        system, pos = peptide_system
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=2, network=tcp_gigabit_ethernet()),
            RunOptions(config=MDRunConfig(n_steps=2, dt=0.0004)),
        )
        for tl in res.timelines:
            assert tl.phase_totals("classic").total > 0
            assert tl.phase_totals("pme").total > 0

    def test_serial_run_has_no_comm(self, peptide_system):
        system, pos = peptide_system
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=1, network=tcp_gigabit_ethernet()),
            RunOptions(config=MDRunConfig(n_steps=2, dt=0.0004)),
        )
        totals = res.timelines[0].grand_total()
        assert totals.comm == 0.0
        assert totals.sync == 0.0
        assert totals.comp > 0

    def test_dual_processor_placement_runs(self, peptide_system):
        system, pos = peptide_system
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(
                n_ranks=4, network=tcp_gigabit_ethernet(), node=NodeSpec(cpus_per_node=2)
            ),
            RunOptions(config=MDRunConfig(n_steps=2, dt=0.0004)),
        )
        assert res.spec.n_nodes == 2
        assert res.wall_time() > 0

    def test_determinism(self, peptide_system):
        system, pos = peptide_system
        cfg = MDRunConfig(n_steps=2, dt=0.0004)
        spec = ClusterSpec(n_ranks=4, network=tcp_gigabit_ethernet(), seed=7)
        a = run_parallel_md(system, pos, spec, RunOptions(config=cfg))
        b = run_parallel_md(system, pos, spec, RunOptions(config=cfg))
        assert a.wall_time() == pytest.approx(b.wall_time(), rel=1e-12)
        assert a.component_time("pme") == pytest.approx(
            b.component_time("pme"), rel=1e-12
        )

    def test_middleware_label(self, peptide_system):
        system, pos = peptide_system
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=2, network=tcp_gigabit_ethernet()),
            RunOptions(middleware="cmpi", config=MDRunConfig(n_steps=1, dt=0.0004)),
        )
        assert res.middleware == "cmpi"

    def test_unknown_middleware_rejected(self, peptide_system):
        system, pos = peptide_system
        with pytest.raises(ValueError):
            run_parallel_md(
                system,
                pos,
                ClusterSpec(n_ranks=2, network=tcp_gigabit_ethernet()),
                RunOptions(middleware="pvm"),
            )


class TestResultSummary:
    def test_summary_fields(self, peptide_system):
        system, pos = peptide_system
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=2, network=tcp_gigabit_ethernet()),
            RunOptions(config=MDRunConfig(n_steps=2, dt=0.0004)),
        )
        s = res.summary()
        assert s["n_ranks"] == 2
        assert s["classic_time"] > 0
        assert s["pme_time"] > 0
        assert s["wall_time"] >= max(s["classic_time"], s["pme_time"])
        assert np.isfinite(s["final_energy"])

    def test_total_breakdown_covers_phases(self, peptide_system):
        system, pos = peptide_system
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=2, network=tcp_gigabit_ethernet()),
            RunOptions(config=MDRunConfig(n_steps=2, dt=0.0004)),
        )
        total = res.total_breakdown()
        classic = res.component("classic")
        pme = res.component("pme")
        assert total.total == pytest.approx(classic.total + pme.total, rel=1e-12)
