"""Cost model: unit costs, FFT units, calibration invariants."""


import pytest

from repro.parallel import MachineCostModel, PIII_1GHZ, fft_units


class TestFftUnits:
    def test_single_pass(self):
        assert fft_units((10, 16)) == pytest.approx(10 * 16 * 4)

    def test_multiple_passes_add(self):
        a = fft_units((10, 16))
        b = fft_units((5, 32))
        assert fft_units((10, 16), (5, 32)) == pytest.approx(a + b)

    def test_length_one_guarded(self):
        # log2 floor at 2 avoids zero-work degenerate transforms
        assert fft_units((3, 1)) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fft_units((1, 0))
        with pytest.raises(ValueError):
            fft_units((-1, 8))

    def test_3d_decomposition_matches_full(self):
        """Slab-wise unit counts sum to the whole-mesh 3-D transform count."""
        kx, ky, kz = 16, 12, 8
        full = fft_units((ky * kz, kx), (kx * kz, ky), (kx * ky, kz))
        # distributed: 2-D passes on x-slabs + 1-D passes on y-slabs
        p = 4
        parts = 0.0
        for r in range(p):
            cx = kx // p
            cy = ky // p
            parts += fft_units((cx * kz, ky), (cx * ky, kz))  # local 2-D
            parts += fft_units((cy * kz, kx))  # local 1-D after transpose
        assert parts == pytest.approx(full)


class TestCostModel:
    def test_helpers_scale_linearly(self):
        m = MachineCostModel()
        assert m.classic_pairs(200) == pytest.approx(2 * m.classic_pairs(100))
        assert m.bonded(10) == pytest.approx(10 * m.bonded_cost)
        assert m.spread(5) == pytest.approx(5 * m.spread_cost)
        assert m.integrate(7) == pytest.approx(7 * m.integrate_cost)
        assert m.exclusions(3) == pytest.approx(3 * m.exclusion_cost)
        assert m.neighbor_build(11) == pytest.approx(11 * m.pair_candidate_cost)
        assert m.grid_pass(9) == pytest.approx(9 * m.grid_cost)
        assert m.fft(100.0) == pytest.approx(100 * m.fft_cost)

    def test_reference_model_calibration_envelope(self):
        """The published serial split: ~3.4 s classic, ~2.8 s PME / 10 steps.

        Checked against the measured operation counts of the synthetic
        myoglobin workload (~451k pairs, ~18k bonded terms, 80x36x48 mesh).
        """
        m = PIII_1GHZ
        pairs = 308_565  # within the 10 A cutoff (list holds ~451k with skin)
        bonded = 15_181
        classic_step = m.classic_pairs(pairs) + m.bonded(bonded)
        assert 0.30 < classic_step < 0.38

        mesh = 80 * 36 * 48
        spread_points = 2 * 3552 * 64
        fft = 2 * fft_units((36 * 48, 80), (80 * 48, 36), (80 * 36, 48))
        pme_step = m.spread(spread_points) + m.fft(fft) + m.grid_pass(2 * mesh)
        assert 0.24 < pme_step < 0.32

        # the paper's headline ratio: PME slightly under half the total
        assert 0.40 < pme_step / (pme_step + classic_step) < 0.50
