"""The within-point execution engine: fanout pool, kernel backends, plan cache.

The whole subsystem is wall-clock machinery: every pool size and every
kernel backend must produce byte-identical results, and none of the
knobs may appear anywhere near a store cache key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields

import numpy as np
import pytest

from repro.campaign.keys import cache_key, workload_fingerprint
from repro.campaign.store import ResultStore, record_to_dict
from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
from repro.core.design import DesignPoint
from repro.core.factors import FOCAL_POINT
from repro.core.responses import ResponseRecord
from repro.md.cutoff import CutoffScheme
from repro.parallel import MDRunConfig, RunOptions, run_parallel_md
from repro.parallel.costmodel import PIII_1GHZ
from repro.parallel.exec.kernels import (
    available_backends,
    get_backend,
    numba_available,
    pair_physics_numpy,
)
from repro.parallel.exec.plancache import PlanCache
from repro.parallel.exec.pool import FANOUT_ROUNDS, RankFanout
from repro.pme.plans import PLAN_CACHE_HITS

CFG = MDRunConfig(n_steps=2, dt=0.0004)

POOL_SIZES = (1, 2, 4)
KERNELS = ("numpy", "numba") if numba_available() else ("numpy",)


def _spec(p=2):
    return ClusterSpec(n_ranks=p, network=tcp_gigabit_ethernet(), seed=11)


def _record_hash(record: ResponseRecord) -> str:
    doc = json.dumps(record_to_dict(record), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()


# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert callable(get_backend("numpy"))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("fortran")

    @pytest.mark.skipif(numba_available(), reason="numba is installed here")
    def test_missing_numba_raises_with_install_hint(self):
        assert available_backends() == ("numpy",)
        with pytest.raises(RuntimeError, match="not installed"):
            get_backend("numba")

    def test_run_options_validate_kernel_name(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            RunOptions(kernel="fortran")
        with pytest.raises(ValueError, match="exec_workers"):
            RunOptions(exec_workers=-1)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaParity:
    """The compiled loop replays the reference bits exactly (to the ulp)."""

    @pytest.mark.parametrize("elec_mode", ["shift", "ewald"])
    def test_bitwise_parity(self, rng, elec_mode):
        n = 512
        scheme = CutoffScheme(r_cut=10.0, skin=2.0)
        r = rng.uniform(0.8, scheme.r_cut * 1.01, n)  # spans the switch window
        dr = rng.normal(size=(n, 3))
        dr *= (r / np.linalg.norm(dr, axis=1))[:, None]
        r2 = np.einsum("ij,ij->i", dr, dr)
        eps = rng.uniform(0.01, 0.3, n)
        rmin = rng.uniform(2.5, 4.5, n)
        qq = rng.normal(size=n)
        alpha = 0.32 if elec_mode == "ewald" else None

        ref = pair_physics_numpy(r2, dr, eps, rmin, qq, scheme, elec_mode, alpha)
        jit = get_backend("numba")(r2, dr, eps, rmin, qq, scheme, elec_mode, alpha)
        for a, b in zip(ref, jit):
            assert a.tobytes() == b.tobytes()


# ----------------------------------------------------------------------
class TestRankFanout:
    def test_inline_path_runs_in_rank_order(self):
        seen = []
        fan = RankFanout(n_ranks=3, workers=0)
        fan.register("f", [lambda r=r: seen.append(r) or r * 10 for r in range(3)])
        for rank in range(3):
            assert fan.round("f", key=0, rank=rank) == rank * 10
        assert seen == [0, 1, 2]
        fan.assert_drained()

    def test_first_arrival_evaluates_all_then_others_consume(self):
        calls = []
        fan = RankFanout(n_ranks=4, workers=0)
        fan.register("f", [lambda r=r: calls.append(r) or r for r in range(4)])
        # rank 2 arrives first; the whole round evaluates exactly once
        assert fan.round("f", key="step0", rank=2) == 2
        assert calls == [0, 1, 2, 3]
        for rank in (0, 1, 3):
            assert fan.round("f", key="step0", rank=rank) == rank
        assert calls == [0, 1, 2, 3]  # no re-evaluation
        fan.assert_drained()

    @pytest.mark.parametrize("workers", POOL_SIZES)
    def test_pooled_results_match_inline(self, workers):
        tasks = [lambda r=r: (r, r * r) for r in range(4)]
        inline = RankFanout(4, workers=0)
        inline.register("f", tasks)
        with RankFanout(4, workers=workers) as pooled:
            pooled.register("f", tasks)
            for rank in range(4):
                assert pooled.round("f", 0, rank) == inline.round("f", 0, rank)
            pooled.assert_drained()

    def test_unconsumed_round_is_detected(self):
        fan = RankFanout(2, workers=0)
        fan.register("f", [lambda: 1, lambda: 2])
        fan.round("f", 0, 0)  # rank 1 never consumes
        with pytest.raises(AssertionError, match="never fully consumed"):
            fan.assert_drained()

    def test_registration_validates_task_count(self):
        fan = RankFanout(3, workers=0)
        with pytest.raises(ValueError, match="3 ranks"):
            fan.register("f", [lambda: 1])

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            RankFanout(2, workers=-1)


# ----------------------------------------------------------------------
class TestPlanCache:
    def test_same_shape_reuses_the_buffer(self):
        cache = PlanCache()
        a = cache.buffer("t", (8, 3))
        b = cache.buffer("t", (8, 3))
        assert a is b
        assert len(cache) == 1

    def test_shape_change_replaces_not_accumulates(self):
        cache = PlanCache()
        a = cache.buffer("t", (8, 3))
        b = cache.buffer("t", (9, 3))
        assert a is not b and len(cache) == 1

    def test_dtype_is_part_of_the_key(self):
        cache = PlanCache()
        a = cache.buffer("t", (4,))
        c = cache.complex_buffer("t", (4,))
        assert a.dtype == np.float64 and c.dtype == np.complex128
        assert len(cache) == 2

    def test_pme_run_hits_the_cache_after_step_one(self, peptide_system):
        system, pos = peptide_system
        before = PLAN_CACHE_HITS.snapshot()
        run_parallel_md(system, pos, _spec(2), RunOptions(config=CFG))
        assert PLAN_CACHE_HITS.delta(before) > 0


# ----------------------------------------------------------------------
class TestExecKnobBitIdentity:
    """Pool sizes x kernels: one point, byte-identical response records."""

    @pytest.fixture(scope="class")
    def baseline(self, peptide_system):
        system, pos = peptide_system
        point = DesignPoint(config=FOCAL_POINT, n_ranks=2)
        result = run_parallel_md(system, pos, _spec(2), RunOptions(config=CFG))
        return point, result, _record_hash(ResponseRecord.from_run(point, result))

    @pytest.mark.parametrize("workers", POOL_SIZES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_pool_and_kernel_legs_match_serial(
        self, peptide_system, baseline, workers, kernel
    ):
        system, pos = peptide_system
        point, base_result, base_hash = baseline
        before = FANOUT_ROUNDS.snapshot()
        result = run_parallel_md(
            system, pos, _spec(2),
            RunOptions(config=CFG, exec_workers=workers, kernel=kernel),
        )
        assert FANOUT_ROUNDS.delta(before) > 0  # the pool actually engaged
        assert result.final_positions.tobytes() == base_result.final_positions.tobytes()
        assert result.timelines == base_result.timelines
        assert _record_hash(ResponseRecord.from_run(point, result)) == base_hash


# ----------------------------------------------------------------------
class TestKnobsAbsentFromCacheKeys:
    """Execution knobs must be invisible to the result store."""

    def test_no_exec_field_feeds_the_key(self):
        # the key is a pure function of workload/point/config/cost/seed;
        # none of those carriers has an execution-knob field
        for carrier in (MDRunConfig, DesignPoint):
            names = {f.name for f in fields(carrier)}
            assert not names & {"kernel", "exec_workers", "backend", "pool"}

    def test_store_hit_across_exec_legs(self, peptide_system, tmp_path):
        system, pos = peptide_system
        fp = workload_fingerprint(system, pos)
        point = DesignPoint(config=FOCAL_POINT, n_ranks=2)
        key = cache_key(fp, point, CFG, PIII_1GHZ, 2002)

        pooled = run_parallel_md(
            system, pos, _spec(2), RunOptions(config=CFG, exec_workers=4)
        )
        store = ResultStore(tmp_path)
        store.put(key, ResponseRecord.from_run(point, pooled))

        # a serial-numpy evaluation of the same point addresses the same
        # entry and finds the pooled leg's record, byte for byte
        serial = run_parallel_md(system, pos, _spec(2), RunOptions(config=CFG))
        hit = store.get(cache_key(fp, point, CFG, PIII_1GHZ, 2002))
        assert hit is not None
        assert _record_hash(hit) == _record_hash(ResponseRecord.from_run(point, serial))
