"""Figure 2 fidelity: the wire traffic has CHARMM's exact structure.

One MD step with PME must produce, in order of the paper's diagram:

* barrier traffic (one-byte control messages),
* two all-to-all *personalized* exchanges (the FFT transposes, complex
  mesh slices),
* one all-to-all *collective* combine (the energies+forces allreduce),
* the coordinate allgather.

These tests classify the recorded transfers by size and count them
against the analytic expectations.
"""

import pytest

from repro.cluster import ClusterSpec, score_gigabit_ethernet
from repro.parallel import MDRunConfig, RunOptions, run_parallel_md


@pytest.fixture(scope="module")
def one_step_run(peptide_system):
    system, pos = peptide_system
    res = run_parallel_md(
        system,
        pos,
        ClusterSpec(n_ranks=2, network=score_gigabit_ethernet(), seed=3),
        RunOptions(config=MDRunConfig(n_steps=1, dt=0.0004)),
    )
    return system, res


def _classify(system, res, p=2):
    n = system.n_atoms
    energy_fields = 9
    allreduce_bytes = (energy_fields + 3 * n) * 8
    kx, ky, kz = system.pme.grid_shape
    # each transpose message: (my x-planes) x (partner y-planes) x kz complex
    transpose_bytes = (kx // p) * (ky // p) * kz * 16
    # allgather block: partner's atom block positions
    gather_bytes = ((n + 1) // p) * 3 * 8

    counts = {"barrier": 0, "transpose": 0, "allreduce": 0, "gather": 0, "other": 0}
    for t in res.transfers:
        if t.nbytes <= 8:
            counts["barrier"] += 1
        elif abs(t.nbytes - transpose_bytes) <= transpose_bytes * 0.05:
            counts["transpose"] += 1
        elif abs(t.nbytes - allreduce_bytes) <= allreduce_bytes * 0.01:
            counts["allreduce"] += 1
        elif abs(t.nbytes - gather_bytes) <= gather_bytes * 0.26:
            counts["gather"] += 1
        else:
            counts["other"] += 1
    return counts


class TestWireStructure:
    def test_transpose_count(self, one_step_run):
        """2 transposes/step x 1 partner x 2 directions... at p=2 each
        alltoallv is one pairwise exchange = 2 messages; forward+inverse
        FFT = 2 alltoallvs -> 4 transpose messages per step."""
        system, res = one_step_run
        counts = _classify(system, res)
        assert counts["transpose"] == 4

    def test_allreduce_count(self, one_step_run):
        """Recursive doubling at p=2: one round, both directions = 2
        messages of the full energies+forces vector."""
        system, res = one_step_run
        counts = _classify(system, res)
        assert counts["allreduce"] == 2

    def test_gather_count(self, one_step_run):
        """Ring allgatherv at p=2: one step, 2 messages of a half-block."""
        system, res = one_step_run
        counts = _classify(system, res)
        assert counts["gather"] == 2

    def test_barrier_messages_present(self, one_step_run):
        system, res = one_step_run
        counts = _classify(system, res)
        assert counts["barrier"] == 2  # dissemination at p=2: one round

    def test_no_unexplained_traffic(self, one_step_run):
        """Every byte on the wire is accounted for by Figure 2's pattern."""
        system, res = one_step_run
        counts = _classify(system, res)
        assert counts["other"] == 0

    def test_total_message_count(self, one_step_run):
        system, res = one_step_run
        assert len(res.transfers) == 4 + 2 + 2 + 2

    def test_traffic_scales_with_steps(self, peptide_system):
        system, pos = peptide_system
        res3 = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=2, network=score_gigabit_ethernet(), seed=3),
            RunOptions(config=MDRunConfig(n_steps=3, dt=0.0004)),
        )
        assert len(res3.transfers) == 3 * 10

    def test_classic_only_has_no_transposes(self, peptide_system_shift):
        system, pos = peptide_system_shift
        res = run_parallel_md(
            system,
            pos,
            ClusterSpec(n_ranks=2, network=score_gigabit_ethernet(), seed=3),
            RunOptions(config=MDRunConfig(n_steps=1, dt=0.0004)),
        )
        n = system.n_atoms
        allreduce_bytes = (9 + 3 * n) * 8
        big = [t for t in res.transfers if t.nbytes > allreduce_bytes * 1.05]
        assert big == []  # nothing larger than the force combine
