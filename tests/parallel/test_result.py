"""ParallelRunResult aggregation helpers."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
from repro.instrument import PhaseTotals, Timeline
from repro.md import EnergyBreakdown
from repro.parallel import MDRunConfig
from repro.parallel.result import ParallelRunResult


def _make_result(timelines, transfers=(), energies=None):
    return ParallelRunResult(
        spec=ClusterSpec(n_ranks=len(timelines), network=tcp_gigabit_ethernet()),
        config=MDRunConfig(n_steps=1),
        energies=energies if energies is not None else [EnergyBreakdown(lj=-1.0)],
        timelines=timelines,
        transfers=list(transfers),
        final_positions=np.zeros((2, 3)),
    )


def _timeline(classic=(1.0, 0.0, 0.0), pme=(0.5, 0.0, 0.0)):
    tl = Timeline()
    with tl.phase("classic"):
        tl.add("comp", classic[0])
        tl.add("comm", classic[1])
        tl.add("sync", classic[2])
    with tl.phase("pme"):
        tl.add("comp", pme[0])
        tl.add("comm", pme[1])
        tl.add("sync", pme[2])
    return tl


class TestAggregation:
    def test_wall_time_is_max_over_ranks(self):
        res = _make_result([_timeline((1.0, 0, 0)), _timeline((3.0, 0, 0))])
        assert res.wall_time() == pytest.approx(3.0 + 0.5)

    def test_component_is_mean_over_ranks(self):
        res = _make_result(
            [_timeline((1.0, 0.2, 0.0)), _timeline((3.0, 0.0, 0.4))]
        )
        classic = res.component("classic")
        assert classic.comp == pytest.approx(2.0)
        assert classic.comm == pytest.approx(0.1)
        assert classic.sync == pytest.approx(0.2)

    def test_missing_phase_is_zero(self):
        res = _make_result([_timeline()])
        assert res.component("bonded").total == 0.0

    def test_total_breakdown_sums_phases(self):
        res = _make_result([_timeline((1.0, 0.1, 0.2), (0.5, 0.3, 0.4))])
        total = res.total_breakdown()
        assert total.comp == pytest.approx(1.5)
        assert total.comm == pytest.approx(0.4)
        assert total.sync == pytest.approx(0.6)

    def test_empty_transfer_stats(self):
        res = _make_result([_timeline()])
        stats = res.comm_stats()
        assert stats.n_transfers == 0

    def test_summary_with_no_energies(self):
        res = _make_result([_timeline()], energies=[])
        assert np.isnan(res.summary()["final_energy"])

    def test_n_ranks(self):
        res = _make_result([_timeline(), _timeline()])
        assert res.n_ranks == 2


class TestPhaseTotalsHelpers:
    def test_component_returns_phase_totals_type(self):
        res = _make_result([_timeline()])
        assert isinstance(res.component("classic"), PhaseTotals)
