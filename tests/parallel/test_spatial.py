"""Spatial domain decomposition: bit-identity with replicated + halo edge cases.

The acceptance bar of the spatial engine: identical physics (energies
and trajectories bitwise equal to the replicated-data strategy at the
same rank count), neighbour-only communication (per-rank message counts
independent of p), and hard failures on anything the single-hop halo
schedule cannot represent.
"""

import numpy as np
import pytest

from repro.campaign.workloads import build_workload
from repro.cluster import ClusterSpec, tcp_gigabit_ethernet
from repro.instrument.commstats import CommTrace
from repro.md.box import PeriodicBox
from repro.parallel import MDRunConfig, RunOptions, run_parallel_md
from repro.parallel.decomposition import AtomDecomposition
from repro.parallel.spatial import (
    SpatialDecomposition,
    SpatialEngine,
    SpatialLedger,
    grid_for,
    halo_pulses,
)

CFG = MDRunConfig(n_steps=3, dt=0.0004)


@pytest.fixture(scope="module")
def water():
    return build_workload("water-box")


@pytest.fixture(scope="module")
def myoglobin():
    return build_workload("myoglobin-shift")


def _run(system, pos, p, strategy, config=CFG, **kw):
    return run_parallel_md(
        system,
        pos,
        ClusterSpec(n_ranks=p, network=tcp_gigabit_ethernet()),
        RunOptions(config=config, strategy=strategy, **kw),
    )


def _assert_bit_identical(res_a, res_b):
    """Energies and trajectories bitwise equal — not approx, equal."""
    assert len(res_a.energies) == len(res_b.energies)
    for ea, eb in zip(res_a.energies, res_b.energies):
        assert ea == eb
    assert res_a.final_positions.tobytes() == res_b.final_positions.tobytes()


class TestBitIdenticalToReplicated:
    """Same rank count, same middleware fold — same bits out."""

    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_water_box_mpi(self, water, p):
        system, pos = water
        _assert_bit_identical(
            _run(system, pos, p, "spatial"), _run(system, pos, p, "replicated")
        )

    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_myoglobin_shift_mpi(self, myoglobin, p):
        system, pos = myoglobin
        _assert_bit_identical(
            _run(system, pos, p, "spatial"), _run(system, pos, p, "replicated")
        )

    @pytest.mark.parametrize("p", [2, 8])
    def test_water_box_cmpi(self, water, p):
        """CMPI folds in arrival-chain order; the ledger must match it too."""
        system, pos = water
        _assert_bit_identical(
            _run(system, pos, p, "spatial", middleware="cmpi"),
            _run(system, pos, p, "replicated", middleware="cmpi"),
        )


class TestBoundaryAtom:
    """An atom exactly on a cell face belongs to the upper cell."""

    def test_owner_is_upper_cell(self, water):
        system, _ = water
        decomp = SpatialDecomposition.for_cluster(system.box, 2, system.scheme.r_cut)
        assert decomp.grid == (2, 1, 1)
        # 24.8 / 2 == 12.4 exactly in binary FP, so the scaled coordinate
        # is exactly 0.5 and floor(0.5 * 2) == 1: the upper cell, rank 1
        boundary = np.array([[12.4, 1.0, 1.0]])
        assert decomp.owners(boundary)[0] == 1
        assert decomp.cell_coords(boundary)[0, 0] == 1

    def test_run_with_atom_on_the_face(self, water):
        """Ownership of a face atom is consistent across ranks: the run
        neither loses nor double-counts it, and stays bit-identical."""
        system, pos = water
        shifted = pos.copy()
        shifted[:, 0] += 12.4 - shifted[0, 0]
        shifted[0, 0] = 12.4  # exact, whatever the shift rounding did
        _assert_bit_identical(
            _run(system, shifted, 2, "spatial"),
            _run(system, shifted, 2, "replicated"),
        )


class TestMultiPulseHalo:
    """Cutoff wider than a cell: ghosts arrive over several pulses."""

    def test_pulse_count(self, water):
        system, _ = water
        # four slabs of 6.2 A against an 8 A cutoff: two pulses in x
        assert halo_pulses(system.box, (4, 1, 1), system.scheme.r_cut) == (2, 0, 0)

    def test_forced_slab_grid_runs_bit_identical(self, water):
        system, pos = water
        _assert_bit_identical(
            _run(system, pos, 4, "spatial", spatial_grid=(4, 1, 1)),
            _run(system, pos, 4, "replicated"),
        )


class TestUnitGridDimensions:
    """A grid dimension of 1 wraps to self — it must simply not talk."""

    def test_degenerate_dims_do_not_communicate(self, water):
        system, pos = water
        trace = CommTrace()
        # barrier off: its point-to-point rounds would show in the trace
        cfg = MDRunConfig(n_steps=2, dt=0.0004, barrier_per_step=False)
        res = _run(
            system, pos, 2, "spatial",
            config=cfg, spatial_grid=(1, 1, 2), trace=trace,
        )
        assert len(res.energies) == cfg.n_steps
        # only z is split: one halo pulse (2 exchanges) + migration
        # (2 exchanges) per step -> 4 sends per rank per step
        for rank in range(2):
            sends = [e for e in trace.events if e.kind == "send" and e.rank == rank]
            assert len(sends) == 4 * cfg.n_steps

    def test_forced_unit_grid_bit_identical(self, water):
        system, pos = water
        _assert_bit_identical(
            _run(system, pos, 2, "spatial", spatial_grid=(1, 1, 2)),
            _run(system, pos, 2, "replicated"),
        )


class TestNeighbourOnlyScaling:
    """The paper's question, answered structurally: per-rank message
    counts do not grow with p (unlike the replicated allreduce)."""

    @staticmethod
    def _per_rank_sends(system, pos, p):
        trace = CommTrace()
        cfg = MDRunConfig(n_steps=2, dt=0.0004, barrier_per_step=False)
        run_parallel_md(
            system, pos,
            ClusterSpec(n_ranks=p, network=tcp_gigabit_ethernet(), max_nodes=p),
            RunOptions(config=cfg, strategy="spatial", trace=trace),
        )
        counts = {
            rank: sum(1 for e in trace.events if e.kind == "send" and e.rank == rank)
            for rank in range(p)
        }
        return counts, cfg.n_steps

    @pytest.mark.parametrize("p,grid", [(8, (2, 2, 2)), (27, (3, 3, 3))])
    def test_message_count_independent_of_p(self, water, p, grid):
        system, pos = water
        decomp = SpatialDecomposition.for_cluster(system.box, p, system.scheme.r_cut)
        assert decomp.grid == grid
        assert decomp.pulses == (1, 1, 1)
        counts, n_steps = self._per_rank_sends(system, pos, p)
        # 3 dims x (2 halo sends + 2 migrate sends) per step, at EVERY p
        assert set(counts.values()) == {12 * n_steps}


class TestPassiveInstrumentation:
    """Sanitizer and tracing observe a spatial run without changing it."""

    def test_toggles_are_bitwise_invisible(self, water):
        system, pos = water
        plain = _run(system, pos, 4, "spatial")
        watched = _run(
            system, pos, 4, "spatial", sanitize=True, trace=CommTrace()
        )
        _assert_bit_identical(plain, watched)
        assert plain.wall_time() == watched.wall_time()


class TestGeometryUnits:
    def test_grid_for_prefers_wide_dimensions(self, water, myoglobin):
        assert grid_for(water[0].box, 8) == (2, 2, 2)
        assert grid_for(myoglobin[0].box, 8) == (4, 1, 2)
        assert grid_for(water[0].box, 1) == (1, 1, 1)

    def test_pulse_cap_at_grid_minus_one(self):
        # a cutoff spanning the whole ring saturates at G - 1: beyond
        # that a pulse would re-import the rank's own atoms
        box = PeriodicBox(40.0, 40.0, 40.0)
        assert halo_pulses(box, (4, 1, 1), 35.0) == (3, 0, 0)
        # legal cutoffs never hit the cap, only multi-pulse counts
        assert halo_pulses(box, (4, 1, 1), 19.0) == (2, 0, 0)

    def test_grid_validation(self, water):
        system, _ = water
        with pytest.raises(ValueError, match="cells for"):
            SpatialDecomposition.for_cluster(
                system.box, 4, system.scheme.r_cut, grid=(2, 1, 1)
            )
        with pytest.raises(ValueError, match=">= 1"):
            SpatialDecomposition.for_cluster(
                system.box, 2, system.scheme.r_cut, grid=(-2, 1, -1)
            )


class TestHardFailures:
    def test_spatial_rejects_pme(self):
        system, pos = build_workload("myoglobin-pme")
        with pytest.raises(ValueError, match="classic"):
            _run(system, pos, 2, "spatial")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            RunOptions(strategy="scattered")

    def test_migration_rejects_multi_cell_hop(self, water):
        """An atom teleporting two cells in one step is a hard error,
        matching the single-hop schedule the contract declares."""
        system, pos = water
        decomp = SpatialDecomposition.for_cluster(
            system.box, 4, system.scheme.r_cut, grid=(4, 1, 1)
        )
        vdecomp = AtomDecomposition(system.n_atoms, 4)
        ledger = SpatialLedger(system, vdecomp)
        engine = SpatialEngine(
            system=system,
            decomp=decomp,
            vdecomp=vdecomp,
            rank=0,
            cost=RunOptions().cost,
            middleware="mpi",
            ledger=ledger,
            positions0=pos,
            velocities0=np.zeros_like(pos),
        )
        engine.begin_step()
        moved = np.nonzero(engine.owned_mask)[0][0]
        engine.positions[moved, 0] = 15.5  # cell 2 of 4: two hops from cell 0
        with pytest.raises(RuntimeError, match="more than one cell"):
            engine.migrate_payload(0, 0)


class TestLedger:
    @staticmethod
    def _post_full_bonded(ledger, system, step=0):
        t = system.bonded_tables
        for term, idx in (
            ("bond", t.bond_idx),
            ("angle", t.angle_idx),
            ("dihedral", t.dihedral_idx),
            ("improper", t.improper_idx),
        ):
            rows = np.arange(len(idx))
            ledger.post_bonded(term, step, rows, np.zeros(len(idx)))

    def test_duplicate_pair_is_rejected(self, water):
        system, _ = water
        ledger = SpatialLedger(system, AtomDecomposition(system.n_atoms, 1))
        self._post_full_bonded(ledger, system)
        pair = (np.array([0]), np.array([1]), np.zeros(1), np.zeros(1))
        ledger.post_pairs(0, *pair)
        ledger.post_pairs(0, *pair)
        with pytest.raises(RuntimeError, match="posted twice"):
            ledger.assemble("mpi")

    def test_missing_bonded_row_is_rejected(self, water):
        """Exactly-once coverage: a row nobody claimed fails assembly
        instead of silently summing as zero."""
        system, _ = water
        ledger = SpatialLedger(system, AtomDecomposition(system.n_atoms, 1))
        t = system.bonded_tables
        rows = np.arange(len(t.bond_idx) - 1)  # drop one bond row
        ledger.post_bonded("bond", 0, rows, np.zeros(len(rows)))
        for term, idx in (
            ("angle", t.angle_idx),
            ("dihedral", t.dihedral_idx),
            ("improper", t.improper_idx),
        ):
            ledger.post_bonded(term, 0, np.arange(len(idx)), np.zeros(len(idx)))
        with pytest.raises(RuntimeError, match="never posted"):
            ledger.assemble("mpi")
