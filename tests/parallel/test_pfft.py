"""Distributed 3-D FFT == numpy.fft.fftn, any rank count and shape."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, score_gigabit_ethernet
from repro.mpi import MPIMiddleware, MPIWorld
from repro.parallel import DistributedFFT, PIII_1GHZ
from repro.sim import Simulator


def _run_fft(shape, p, data, inverse_too=True, seed=1):
    sim = Simulator()
    world = MPIWorld(sim, ClusterSpec(n_ranks=p, network=score_gigabit_ethernet(), seed=seed))
    mw = MPIMiddleware()

    def prog(r):
        f = DistributedFFT(shape, p, r, PIII_1GHZ)
        x0, cx = f.my_x_range
        fwd = yield from f.forward(world.endpoints[r], mw, data[x0 : x0 + cx].astype(complex))
        if inverse_too:
            back = yield from f.inverse(world.endpoints[r], mw, fwd)
        else:
            back = None
        return f, fwd, back

    procs = [sim.spawn(prog(r), name=f"r{r}") for r in range(p)]
    sim.run()
    world.assert_drained()
    return [pr.result for pr in procs]


@pytest.mark.parametrize("p", [1, 2, 4])
@pytest.mark.parametrize("shape", [(8, 8, 8), (16, 12, 10), (20, 6, 14)])
def test_forward_matches_numpy(p, shape, rng):
    data = rng.normal(size=shape)
    ref = np.fft.fftn(data)
    for r, (f, fwd, _back) in enumerate(_run_fft(shape, p, data, inverse_too=False)):
        y0, cy = f.my_y_range
        assert np.allclose(fwd, ref[:, y0 : y0 + cy, :], atol=1e-10)


@pytest.mark.parametrize("p", [1, 3, 5])
def test_non_power_of_two_ranks(p, rng):
    shape = (15, 10, 9)
    data = rng.normal(size=shape)
    ref = np.fft.fftn(data)
    for f, fwd, back in _run_fft(shape, p, data):
        y0, cy = f.my_y_range
        assert np.allclose(fwd, ref[:, y0 : y0 + cy, :], atol=1e-10)
        x0, cx = f.my_x_range
        assert np.allclose(back, data[x0 : x0 + cx], atol=1e-10)


def test_roundtrip_identity(rng):
    shape = (16, 12, 10)
    data = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    for f, _fwd, back in _run_fft(shape, 4, data):
        x0, cx = f.my_x_range
        assert np.allclose(back, data[x0 : x0 + cx], atol=1e-10)


def test_complex_input_supported(rng):
    shape = (8, 8, 8)
    data = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    ref = np.fft.fftn(data)
    for f, fwd, _ in _run_fft(shape, 2, data, inverse_too=False):
        y0, cy = f.my_y_range
        assert np.allclose(fwd, ref[:, y0 : y0 + cy, :], atol=1e-10)


def test_wrong_slab_shape_rejected():
    sim = Simulator()
    world = MPIWorld(sim, ClusterSpec(n_ranks=2, network=score_gigabit_ethernet()))
    mw = MPIMiddleware()

    def prog(r):
        f = DistributedFFT((8, 8, 8), 2, r, PIII_1GHZ)
        yield from f.forward(world.endpoints[r], mw, np.zeros((3, 8, 8), dtype=complex))

    for r in range(2):
        sim.spawn(prog(r))
    with pytest.raises(ValueError):
        sim.run()


def test_compute_time_charged(rng):
    shape = (16, 12, 10)
    data = rng.normal(size=shape)
    sim = Simulator()
    world = MPIWorld(sim, ClusterSpec(n_ranks=2, network=score_gigabit_ethernet()))
    mw = MPIMiddleware()

    def prog(r):
        f = DistributedFFT(shape, 2, r, PIII_1GHZ)
        x0, cx = f.my_x_range
        yield from f.forward(world.endpoints[r], mw, data[x0 : x0 + cx].astype(complex))

    for r in range(2):
        sim.spawn(prog(r))
    sim.run()
    for ep in world.endpoints:
        totals = ep.timeline.grand_total()
        assert totals.comp > 0
        assert totals.comm > 0  # the transpose moved data
