"""Parallel PME == serial PME: energies and (summed) partial forces."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, score_gigabit_ethernet
from repro.mpi import MPIMiddleware, MPIWorld
from repro.parallel import AtomDecomposition, ParallelPME, PIII_1GHZ
from repro.pme import PME, self_energy
from repro.sim import Simulator


def _run_ppme(system, positions, p, seed=1):
    sim = Simulator()
    world = MPIWorld(sim, ClusterSpec(n_ranks=p, network=score_gigabit_ethernet(), seed=seed))
    mw = MPIMiddleware()
    decomp = AtomDecomposition(system.n_atoms, p)

    def prog(r):
        ppme = ParallelPME(
            pme=system.pme,
            box=system.box,
            decomp=decomp,
            exclusions=system.exclusions,
            charges=system.charges,
            n_ranks=p,
            rank=r,
            cost=PIII_1GHZ,
        )
        result = yield from ppme.reciprocal(world.endpoints[r], mw, positions)
        return result

    procs = [sim.spawn(prog(r), name=f"r{r}") for r in range(p)]
    sim.run()
    world.assert_drained()
    return [pr.result for pr in procs], world


@pytest.mark.parametrize("p", [1, 2, 4])
def test_matches_serial(peptide_system, p):
    system, pos = peptide_system
    serial_e, serial_f = system.pme_energy_forces(pos)
    results, _ = _run_ppme(system, pos, p)

    total_recip = sum(r.reciprocal_energy for r in results)
    total_self = sum(r.self_energy for r in results)
    total_excl = sum(r.exclusion_energy for r in results)
    total_forces = sum(r.forces for r in results)

    assert total_recip == pytest.approx(serial_e.pme_reciprocal, rel=1e-9)
    assert total_self == pytest.approx(serial_e.pme_self, rel=1e-12)
    assert total_excl == pytest.approx(serial_e.pme_exclusion, rel=1e-9)
    assert np.allclose(total_forces, serial_f, atol=1e-8)


def test_three_ranks_uneven_slabs(peptide_system):
    system, pos = peptide_system
    serial_e, serial_f = system.pme_energy_forces(pos)
    results, _ = _run_ppme(system, pos, 3)
    total_forces = sum(r.forces for r in results)
    total_e = sum(
        r.reciprocal_energy + r.self_energy + r.exclusion_energy for r in results
    )
    assert total_e == pytest.approx(serial_e.pme_total, rel=1e-9)
    assert np.allclose(total_forces, serial_f, atol=1e-8)


def test_exclusion_slices_partition(peptide_system):
    system, pos = peptide_system
    p = 4
    decomp = AtomDecomposition(system.n_atoms, p)
    total = 0
    for r in range(p):
        ppme = ParallelPME(
            pme=system.pme,
            box=system.box,
            decomp=decomp,
            exclusions=system.exclusions,
            charges=system.charges,
            n_ranks=p,
            rank=r,
            cost=PIII_1GHZ,
        )
        total += len(ppme.my_exclusions)
    assert total == len(system.exclusions)


def test_self_energy_shares_sum(peptide_system):
    system, _ = peptide_system
    expect = self_energy(system.charges, system.ewald_alpha)
    p = 3
    decomp = AtomDecomposition(system.n_atoms, p)
    shares = [
        ParallelPME(
            pme=system.pme,
            box=system.box,
            decomp=decomp,
            exclusions=system.exclusions,
            charges=system.charges,
            n_ranks=p,
            rank=r,
            cost=PIII_1GHZ,
        ).self_energy_share
        for r in range(p)
    ]
    assert sum(shares) == pytest.approx(expect, rel=1e-12)


def test_pme_phase_charges_compute_and_comm(peptide_system):
    system, pos = peptide_system
    _, world = _run_ppme(system, pos, 4)
    for ep in world.endpoints:
        totals = ep.timeline.grand_total()
        assert totals.comp > 0
        assert totals.comm > 0
