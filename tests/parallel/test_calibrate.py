"""Cost-model calibration utility."""

import pytest

from repro.parallel import MachineCostModel
from repro.parallel.calibrate import WorkloadCounts, calibrate, measure_counts


@pytest.fixture(scope="module")
def counts(peptide_system):
    system, pos = peptide_system
    return measure_counts(system, pos)


class TestMeasureCounts:
    def test_counts_positive(self, counts):
        assert counts.pairs_in_cutoff > 0
        assert counts.bonded_terms > 0
        assert counts.exclusions > 0
        assert counts.spread_points > 0
        assert counts.fft_unit_count > 0

    def test_spread_points_formula(self, counts, peptide_system):
        system, _ = peptide_system
        assert counts.spread_points == 2 * system.n_atoms * system.pme.order**3

    def test_classic_system_has_no_pme_counts(self, peptide_system_shift):
        system, pos = peptide_system_shift
        c = measure_counts(system, pos)
        assert c.spread_points == 0
        assert c.fft_unit_count == 0
        assert c.grid_points == 0


class TestCalibrate:
    def test_hits_targets_exactly(self, counts):
        model = calibrate(counts, classic_target=0.34, pme_target=0.28)
        assert counts.classic_seconds(model) == pytest.approx(0.34, rel=1e-12)
        assert counts.pme_seconds(model) == pytest.approx(0.28, rel=1e-12)

    def test_preserves_internal_ratios(self, counts):
        base = MachineCostModel()
        model = calibrate(counts, 0.5, 0.5, base=base)
        assert model.pair_cost / model.bonded_cost == pytest.approx(
            base.pair_cost / base.bonded_cost
        )
        assert model.spread_cost / model.fft_cost == pytest.approx(
            base.spread_cost / base.fft_cost
        )

    def test_faster_machine_smaller_constants(self, counts):
        slow = calibrate(counts, 0.4, 0.4)
        fast = calibrate(counts, 0.2, 0.2)
        assert fast.pair_cost == pytest.approx(slow.pair_cost / 2)
        assert fast.fft_cost == pytest.approx(slow.fft_cost / 2)

    def test_validation(self, counts):
        with pytest.raises(ValueError):
            calibrate(counts, 0.0, 0.3)
        with pytest.raises(ValueError):
            calibrate(counts, 0.3, -1.0)

    def test_reference_model_consistency(self, counts):
        """PIII_1GHZ should be (close to) what calibrate() would produce for
        the paper's serial split on the full workload — spot-check the
        procedure is self-consistent on this smaller system."""
        model = calibrate(counts, 0.1, 0.05)
        recal = calibrate(counts, 0.1, 0.05, base=model)
        assert recal.pair_cost == pytest.approx(model.pair_cost)


class TestWorkloadCounts:
    def test_seconds_helpers(self):
        m = MachineCostModel()
        c = WorkloadCounts(
            pairs_in_cutoff=100,
            bonded_terms=10,
            exclusions=5,
            n_atoms=20,
            spread_points=50,
            fft_unit_count=30.0,
            grid_points=40,
        )
        assert c.classic_seconds(m) == pytest.approx(
            100 * m.pair_cost + 10 * m.bonded_cost + 20 * m.integrate_cost
        )
        assert c.pme_seconds(m) == pytest.approx(
            50 * m.spread_cost + 30 * m.fft_cost + 40 * m.grid_cost + 5 * m.exclusion_cost
        )
