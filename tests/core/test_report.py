"""Report rendering: tables and text bars."""

import pytest

from repro.core import (
    breakdown_table,
    format_table,
    speed_table,
    text_bar,
    time_series_table,
)
from repro.core.responses import ResponseRecord


def _record(n_ranks=2, **overrides):
    base = dict(
        network="tcp-gige",
        middleware="mpi",
        cpus_per_node=1,
        n_ranks=n_ranks,
        replicate=0,
        wall_time=1.0,
        classic_time=0.6,
        pme_time=0.4,
        classic_comp=0.4,
        classic_comm=0.1,
        classic_sync=0.1,
        pme_comp=0.2,
        pme_comm=0.1,
        pme_sync=0.1,
        comm_mean_mbs=25.0,
        comm_min_mbs=10.0,
        comm_max_mbs=40.0,
        final_energy=-100.0,
    )
    base.update(overrides)
    return ResponseRecord(**base)


class TestFormatTable:
    def test_alignment_and_rows(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.500" in out and "3.250" in out

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestTextBar:
    def test_full_and_empty(self):
        assert text_bar(1.0, 10) == "##########"
        assert text_bar(0.0, 10) == ".........."

    def test_clamps(self):
        assert text_bar(1.5, 4) == "####"
        assert text_bar(-0.5, 4) == "...."

    def test_proportional(self):
        assert text_bar(0.5, 10).count("#") == 5


class TestTables:
    def test_time_series(self):
        out = time_series_table([_record(2), _record(4)], label="Figure X")
        assert "Figure X" in out
        assert "tcp-gige/mpi/uni" in out
        assert out.count("\n") >= 3

    def test_breakdown_components(self):
        rec = _record()
        for comp in ("classic", "pme", "total"):
            out = breakdown_table([rec], component=comp)
            assert "comp %" in out

    def test_breakdown_rejects_unknown(self):
        with pytest.raises(ValueError):
            breakdown_table([_record()], component="io")

    def test_breakdown_percentages(self):
        out = breakdown_table([_record()], component="classic")
        # 0.4/0.6 comp = 66.7%
        assert "66.7" in out

    def test_speed_table_skips_serial(self):
        out = speed_table([_record(1), _record(4)])
        assert out.count("tcp-gige") == 1

    def test_dual_label(self):
        out = time_series_table([_record(cpus_per_node=2)])
        assert "dual" in out
