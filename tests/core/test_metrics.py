"""Scaling metrics: speedup, efficiency, Karp-Flatt, recommendations."""

import pytest

from repro.core import karp_flatt, recommended_processors, scaling_metrics
from repro.core.responses import ResponseRecord


def _record(n_ranks, total):
    return ResponseRecord(
        network="tcp-gige",
        middleware="mpi",
        cpus_per_node=1,
        n_ranks=n_ranks,
        replicate=0,
        wall_time=total,
        classic_time=total * 0.6,
        pme_time=total * 0.4,
        classic_comp=total * 0.5,
        classic_comm=total * 0.05,
        classic_sync=total * 0.05,
        pme_comp=total * 0.2,
        pme_comm=total * 0.1,
        pme_sync=total * 0.1,
        comm_mean_mbs=10.0,
        comm_min_mbs=5.0,
        comm_max_mbs=20.0,
        final_energy=-1.0,
    )


class TestKarpFlatt:
    def test_perfect_speedup_gives_zero(self):
        assert karp_flatt(4.0, 4) == pytest.approx(0.0)

    def test_no_speedup_gives_one(self):
        assert karp_flatt(1.0, 4) == pytest.approx(1.0)

    def test_amdahl_consistency(self):
        # with serial fraction f, S = 1 / (f + (1-f)/p); KF must recover f
        f, p = 0.2, 8
        s = 1.0 / (f + (1 - f) / p)
        assert karp_flatt(s, p) == pytest.approx(f, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            karp_flatt(2.0, 1)
        with pytest.raises(ValueError):
            karp_flatt(0.0, 4)


class TestScalingMetrics:
    def test_basic_series(self):
        records = [_record(1, 8.0), _record(2, 4.0), _record(4, 2.5)]
        metrics = scaling_metrics(records)
        assert [m.n_ranks for m in metrics] == [1, 2, 4]
        assert metrics[0].speedup == pytest.approx(1.0)
        assert metrics[1].speedup == pytest.approx(2.0)
        assert metrics[1].efficiency == pytest.approx(1.0)
        assert metrics[2].efficiency == pytest.approx(0.8)
        assert metrics[0].serial_fraction is None
        assert metrics[2].serial_fraction == pytest.approx(karp_flatt(3.2, 4))

    def test_requires_serial_record(self):
        with pytest.raises(ValueError):
            scaling_metrics([_record(2, 4.0)])
        with pytest.raises(ValueError):
            scaling_metrics([_record(1, 8.0), _record(1, 8.0)])


class TestRecommendation:
    def test_picks_last_efficient_count(self):
        records = [
            _record(1, 8.0),
            _record(2, 4.2),  # eff 0.95
            _record(4, 2.8),  # eff 0.71
            _record(8, 2.6),  # eff 0.38
        ]
        assert recommended_processors(records, min_efficiency=0.5) == 4
        assert recommended_processors(records, min_efficiency=0.9) == 2
        assert recommended_processors(records, min_efficiency=0.2) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_processors([_record(1, 1.0)], min_efficiency=0.0)

    def test_serial_only(self):
        assert recommended_processors([_record(1, 8.0)]) == 1


class TestOnRealRuns:
    def test_good_network_recommends_more_processors(self, peptide_system):
        """End-to-end: the paper's conclusion, computed from simulation."""
        from repro.core import CharacterizationRunner, FOCAL_POINT
        from repro.parallel import MDRunConfig

        system, pos = peptide_system
        runner = CharacterizationRunner(
            system=system, positions=pos, config=MDRunConfig(n_steps=2, dt=0.0004)
        )
        tcp = runner.sweep(FOCAL_POINT)
        myr = runner.sweep(FOCAL_POINT.with_level("network", "myrinet"))
        assert recommended_processors(myr, 0.5) >= recommended_processors(tcp, 0.5)
