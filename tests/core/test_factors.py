"""Factor space: levels, validation, configuration materialization."""

import pytest

from repro.core import FOCAL_POINT, PAPER_FACTOR_SPACE, Factor, FactorSpace, PlatformConfig


class TestFactor:
    def test_index_of(self):
        f = Factor("network", ("a", "b", "c"))
        assert f.index_of("b") == 1

    def test_unknown_level(self):
        f = Factor("network", ("a", "b"))
        with pytest.raises(ValueError):
            f.index_of("z")

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            Factor("x", ("only",))

    def test_no_duplicates(self):
        with pytest.raises(ValueError):
            Factor("x", ("a", "a"))


class TestPlatformConfig:
    def test_focal_point_is_the_papers(self):
        assert FOCAL_POINT.network == "tcp-gige"
        assert FOCAL_POINT.middleware == "mpi"
        assert FOCAL_POINT.cpus_per_node == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PlatformConfig(network="infiniband")
        with pytest.raises(ValueError):
            PlatformConfig(middleware="pvm")
        with pytest.raises(ValueError):
            PlatformConfig(cpus_per_node=3)

    def test_with_level(self):
        cfg = FOCAL_POINT.with_level("network", "myrinet")
        assert cfg.network == "myrinet"
        assert cfg.middleware == "mpi"
        cfg2 = FOCAL_POINT.with_level("cpus_per_node", 2)
        assert cfg2.cpus_per_node == 2
        with pytest.raises(ValueError):
            FOCAL_POINT.with_level("compiler", "gcc")

    def test_cluster_spec_materialization(self):
        spec = FOCAL_POINT.cluster_spec(8)
        assert spec.n_ranks == 8
        assert spec.network.name == "tcp-gige"
        assert spec.n_nodes == 8

    def test_dual_spec(self):
        spec = FOCAL_POINT.with_level("cpus_per_node", 2).cluster_spec(8)
        assert spec.n_nodes == 4

    def test_label(self):
        assert FOCAL_POINT.label() == "tcp-gige/mpi/uni"
        assert (
            FOCAL_POINT.with_level("cpus_per_node", 2).label() == "tcp-gige/mpi/dual"
        )

    def test_fast_ethernet_extension_level(self):
        cfg = PlatformConfig(network="tcp-fast-ethernet")
        assert cfg.cluster_spec(2).network.name == "tcp-fast-ethernet"


class TestFactorSpace:
    def test_paper_space_is_twelve_points(self):
        assert PAPER_FACTOR_SPACE.n_points == 12
        assert len(list(PAPER_FACTOR_SPACE.points())) == 12

    def test_points_unique(self):
        pts = list(PAPER_FACTOR_SPACE.points())
        assert len(set(pts)) == 12

    def test_factor_lookup(self):
        f = PAPER_FACTOR_SPACE.factor("middleware")
        assert f.levels == ("mpi", "cmpi")
        with pytest.raises(KeyError):
            PAPER_FACTOR_SPACE.factor("compiler")

    def test_duplicate_factor_names_rejected(self):
        with pytest.raises(ValueError):
            FactorSpace(factors=(Factor("a", (1, 2)), Factor("a", (3, 4))))
