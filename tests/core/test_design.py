"""Experimental designs: full factorial and one-factor-at-a-time."""

import pytest

from repro.core import (
    FOCAL_POINT,
    DesignPoint,
    full_factorial,
    one_factor_at_a_time,
)


class TestFullFactorial:
    def test_size(self):
        points = full_factorial()
        # 12 platform configs x 4 processor counts
        assert len(points) == 48

    def test_replicates(self):
        points = full_factorial(replicates=3)
        assert len(points) == 144
        reps = {p.replicate for p in points}
        assert reps == {0, 1, 2}

    def test_replicates_validation(self):
        with pytest.raises(ValueError):
            full_factorial(replicates=0)

    def test_custom_processor_levels(self):
        points = full_factorial(processor_levels=(2,))
        assert len(points) == 12
        assert all(p.n_ranks == 2 for p in points)


class TestOneFactorAtATime:
    def test_configs_are_axis_moves(self):
        points = one_factor_at_a_time()
        configs = {p.config for p in points}
        # focal + 2 other networks + 1 other middleware + 1 other cpu = 5
        assert len(configs) == 5
        assert FOCAL_POINT in configs
        for cfg in configs:
            moved = sum(
                1
                for name in ("network", "middleware", "cpus_per_node")
                if getattr(cfg, name) != getattr(FOCAL_POINT, name)
            )
            assert moved <= 1

    def test_size(self):
        assert len(one_factor_at_a_time()) == 5 * 4

    def test_label(self):
        p = DesignPoint(config=FOCAL_POINT, n_ranks=4)
        assert p.label() == "tcp-gige/mpi/uni p=4"
