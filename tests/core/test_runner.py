"""Characterization runner over a small workload (fast end-to-end)."""

import pytest

from repro.core import (
    FOCAL_POINT,
    CharacterizationRunner,
    DesignPoint,
    ResponseRecord,
)
from repro.parallel import MDRunConfig


@pytest.fixture(scope="module")
def runner(peptide_system):
    system, pos = peptide_system
    return CharacterizationRunner(
        system=system, positions=pos, config=MDRunConfig(n_steps=2, dt=0.0004)
    )


class TestRunner:
    def test_sweep_produces_records(self, runner):
        records = runner.sweep(FOCAL_POINT, processor_levels=(1, 2))
        assert len(records) == 2
        assert [r.n_ranks for r in records] == [1, 2]
        for r in records:
            assert isinstance(r, ResponseRecord)
            assert r.total_time > 0
            assert r.network == "tcp-gige"

    def test_results_cached(self, runner):
        point = DesignPoint(config=FOCAL_POINT, n_ranks=2)
        a = runner.run_point(point)
        b = runner.run_point(point)
        assert a is b

    def test_distinct_points_distinct_runs(self, runner):
        a = runner.run_point(DesignPoint(config=FOCAL_POINT, n_ranks=2))
        b = runner.run_point(DesignPoint(config=FOCAL_POINT, n_ranks=4))
        assert a is not b

    def test_replicates_get_fresh_seeds(self, runner):
        a = runner.run_point(DesignPoint(config=FOCAL_POINT, n_ranks=2, replicate=0))
        b = runner.run_point(DesignPoint(config=FOCAL_POINT, n_ranks=2, replicate=1))
        assert a.wall_time() != b.wall_time()

    def test_measure_full_design(self, runner):
        points = [
            DesignPoint(config=FOCAL_POINT.with_level("network", n), n_ranks=2)
            for n in ("tcp-gige", "myrinet")
        ]
        records = runner.measure(points)
        assert {r.network for r in records} == {"tcp-gige", "myrinet"}


class TestResponseRecord:
    def test_derived_quantities(self, runner):
        (rec,) = runner.sweep(FOCAL_POINT, processor_levels=(2,))
        assert rec.total_time == pytest.approx(rec.classic_time + rec.pme_time)
        assert 0 <= rec.classic_overhead_fraction <= 1
        assert 0 <= rec.pme_overhead_fraction <= 1
        assert rec.total_comp == pytest.approx(rec.classic_comp + rec.pme_comp)

    def test_as_dict(self, runner):
        (rec,) = runner.sweep(FOCAL_POINT, processor_levels=(1,))
        d = rec.as_dict()
        assert d["n_ranks"] == 1
        assert d["network"] == "tcp-gige"

    def test_serial_record_has_no_overhead(self, runner):
        (rec,) = runner.sweep(FOCAL_POINT, processor_levels=(1,))
        assert rec.classic_comm == 0.0
        assert rec.classic_sync == 0.0
        assert rec.pme_overhead_fraction == 0.0
