"""Helical segment builder: counts, charges, strain, helix geometry."""

import numpy as np
import pytest

from repro.md import BondedTables, PeriodicBox, default_forcefield
from repro.md.bonded import bonded_energy_forces
from repro.workloads import SegmentSpec, build_helical_segment, residue_size

FF = default_forcefield()
BOX = PeriodicBox(200.0, 200.0, 200.0)


class TestResidueSize:
    def test_values(self):
        assert residue_size(1) == 13
        assert residue_size(2) == 16
        assert residue_size(3) == 19

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            residue_size(0)


class TestSpec:
    def test_atom_count_prediction(self):
        spec = SegmentSpec(sidechain_ks=(2, 3, 2))
        assert spec.n_atoms == 16 + 19 + 16 + 2  # + extra H + OT2

    def test_nh3_adds_one(self):
        a = SegmentSpec(sidechain_ks=(2, 2))
        b = SegmentSpec(sidechain_ks=(2, 2), nh3_terminus=True)
        assert b.n_atoms == a.n_atoms + 1

    def test_n_residues(self):
        assert SegmentSpec(sidechain_ks=(2,) * 5).n_residues == 5


class TestBuiltSegment:
    @pytest.fixture(scope="class")
    def segment(self):
        spec = SegmentSpec(
            sidechain_ks=(2, 3, 2, 2, 3, 2), basic_residues=frozenset({1}),
        )
        return spec, *build_helical_segment(spec, FF)

    def test_atom_count_matches_spec(self, segment):
        spec, topo, xyz = segment
        assert topo.n_atoms == spec.n_atoms
        assert len(xyz) == topo.n_atoms

    def test_net_charge_is_basic_surplus(self, segment):
        spec, topo, _ = segment
        assert topo.total_charge() == pytest.approx(0.25, abs=1e-12)

    def test_neutral_without_basics(self):
        spec = SegmentSpec(sidechain_ks=(2, 2, 3))
        topo, _ = build_helical_segment(spec, FF)
        assert topo.total_charge() == pytest.approx(0.0, abs=1e-12)

    def test_bonds_unstrained(self, segment):
        _, topo, xyz = segment
        tables = BondedTables(topo, FF)
        from repro.md.bonded import bond_energy_forces

        e, _ = bond_energy_forces(xyz, BOX, tables)
        assert e == pytest.approx(0.0, abs=1e-8)

    def test_low_total_bonded_strain(self, segment):
        _, topo, xyz = segment
        tables = BondedTables(topo, FF)
        energies, _ = bonded_energy_forces(xyz, BOX, tables)
        # a few kcal of angle strain at the termini is expected; nothing more
        assert energies["bond"] < 1e-6
        assert energies["angle"] < 0.3 * topo.n_atoms
        assert energies["improper"] < 1e-6

    def test_helix_geometry(self, segment):
        """CA trace must look like an alpha helix: ~1.5 A rise per residue."""
        _, topo, xyz = segment
        ca = [i for i, a in enumerate(topo.atoms) if a.name == "CA"]
        axis = xyz[ca[-1]] - xyz[ca[0]]
        rise = np.linalg.norm(axis) / (len(ca) - 1)
        assert 1.2 < rise < 1.8

    def test_ca_ca_distance(self, segment):
        _, topo, xyz = segment
        ca = [i for i, a in enumerate(topo.atoms) if a.name == "CA"]
        d = np.linalg.norm(np.diff(xyz[ca], axis=0), axis=1)
        assert np.all((d > 3.5) & (d < 4.1))  # canonical ~3.8 A

    def test_every_type_parameterized(self, segment):
        _, topo, _ = segment
        BondedTables(topo, FF)  # raises KeyError on any missing parameter
        for t in topo.type_names:
            FF.lj_params(t)

    def test_no_intrasegment_clashes(self, segment):
        from repro.md.neighborlist import brute_force_pairs

        _, topo, xyz = segment
        pairs = brute_force_pairs(xyz - xyz.min(0) + 50.0, BOX, 1.4)
        excl = {(int(i), int(j)) for i, j in topo.exclusion_pairs()}
        clashes = [(i, j) for i, j in map(tuple, pairs) if (i, j) not in excl]
        assert clashes == []

    def test_peptide_bond_connectivity(self, segment):
        """One C-N bond between consecutive residues."""
        _, topo, _ = segment
        inter = 0
        for b in topo.bonds:
            ri = topo.atoms[b.i].residue_index
            rj = topo.atoms[b.j].residue_index
            if ri != rj:
                inter += 1
        assert inter == 5  # 6 residues -> 5 peptide bonds

    def test_rejects_single_residue(self):
        with pytest.raises(ValueError):
            build_helical_segment(SegmentSpec(sidechain_ks=(2,)), FF)
