"""Water / CO / sulfate building blocks and lattice placement."""

import numpy as np
import pytest

from repro.md import default_forcefield
from repro.workloads import (
    co_coords,
    co_topology,
    lattice_points,
    sulfate_coords,
    sulfate_topology,
    water_coords,
    water_topology,
)

FF = default_forcefield()


class TestWater:
    def test_topology(self):
        topo = water_topology()
        assert topo.n_atoms == 3
        assert len(topo.bonds) == 2
        assert len(topo.angles) == 1
        assert topo.total_charge() == pytest.approx(0.0)

    def test_geometry(self):
        xyz = water_coords(FF, np.array([5.0, 5.0, 5.0]), orientation_seed=3)
        r_oh = FF.bond_params("OT", "HT").r0
        assert np.linalg.norm(xyz[1] - xyz[0]) == pytest.approx(r_oh)
        assert np.linalg.norm(xyz[2] - xyz[0]) == pytest.approx(r_oh)
        assert np.allclose(xyz[0], [5, 5, 5])

    def test_orientation_varies_with_seed(self):
        a = water_coords(FF, np.zeros(3), orientation_seed=1)
        b = water_coords(FF, np.zeros(3), orientation_seed=2)
        assert not np.allclose(a, b)

    def test_orientation_deterministic(self):
        a = water_coords(FF, np.zeros(3), orientation_seed=9)
        b = water_coords(FF, np.zeros(3), orientation_seed=9)
        assert np.array_equal(a, b)

    def test_angle_preserved_under_rotation(self):
        import math

        xyz = water_coords(FF, np.zeros(3), orientation_seed=11)
        u = xyz[1] - xyz[0]
        v = xyz[2] - xyz[0]
        ang = math.degrees(
            math.acos(np.dot(u, v) / np.linalg.norm(u) / np.linalg.norm(v))
        )
        assert ang == pytest.approx(104.52, abs=1e-6)


class TestCO:
    def test_topology(self):
        topo = co_topology()
        assert topo.n_atoms == 2
        assert len(topo.bonds) == 1
        assert abs(topo.total_charge()) < 1e-12

    def test_bond_length(self):
        xyz = co_coords(FF, np.zeros(3))
        assert np.linalg.norm(xyz[1] - xyz[0]) == pytest.approx(
            FF.bond_params("CM", "OM").r0
        )


class TestSulfate:
    def test_topology(self):
        topo = sulfate_topology()
        assert topo.n_atoms == 5
        assert len(topo.bonds) == 4
        assert len(topo.angles) == 6
        assert topo.total_charge() == pytest.approx(-2.0)

    def test_tetrahedral_geometry(self):
        import math

        xyz = sulfate_coords(FF, np.zeros(3))
        r = FF.bond_params("SUL", "OSL").r0
        for i in range(1, 5):
            assert np.linalg.norm(xyz[i] - xyz[0]) == pytest.approx(r)
        # O-S-O angles all equal the tetrahedral angle
        for i in range(1, 5):
            for j in range(i + 1, 5):
                u, v = xyz[i] - xyz[0], xyz[j] - xyz[0]
                ang = math.degrees(
                    math.acos(np.dot(u, v) / np.linalg.norm(u) / np.linalg.norm(v))
                )
                assert ang == pytest.approx(109.47, abs=0.01)


class TestLattice:
    def test_point_count_and_bounds(self):
        pts = lattice_points(np.array([10.0, 10.0, 10.0]), spacing=2.5)
        assert len(pts) == 4**3
        assert np.all(pts > 0) and np.all(pts < 10)

    def test_margin_respected(self):
        pts = lattice_points(np.array([10.0, 10.0, 10.0]), spacing=2.0, margin=2.0)
        assert np.all(pts >= 2.0 - 1e-9)
        assert np.all(pts <= 8.0 + 1e-9)

    def test_minimum_spacing(self):
        pts = lattice_points(np.array([9.0, 9.0, 9.0]), spacing=3.0)
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        d[d == 0] = np.inf
        assert d.min() >= 3.0 - 1e-9

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            lattice_points(np.array([10.0, 10.0, 10.0]), spacing=0.0)
