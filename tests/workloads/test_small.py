"""Small test systems: water box, solvated peptide."""

import numpy as np
import pytest

from repro.workloads import build_peptide_in_water, build_water_box


class TestWaterBox:
    def test_counts(self):
        topo, pos, box = build_water_box(n_side=3)
        assert topo.n_atoms == 27 * 3
        assert len(pos) == topo.n_atoms

    def test_neutral(self):
        topo, _, _ = build_water_box(n_side=2)
        assert topo.total_charge() == pytest.approx(0.0)

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError):
            build_water_box(n_side=0)

    def test_waters_separated(self):
        topo, pos, box = build_water_box(n_side=3)
        oxygens = pos[0::3]
        dr = box.min_image(oxygens[:, None] - oxygens[None, :])
        d = np.linalg.norm(dr, axis=-1)
        d[d == 0] = np.inf
        assert d.min() > 2.5


class TestPeptideInWater:
    def test_counts(self):
        topo, pos, box = build_peptide_in_water(n_residues=3, n_waters=10)
        assert len(pos) == topo.n_atoms
        n_wat = sum(1 for a in topo.atoms if a.residue == "TIP3")
        assert n_wat == 30

    def test_no_overlap_with_peptide(self):
        from repro.md.neighborlist import brute_force_pairs

        topo, pos, box = build_peptide_in_water(n_residues=3, n_waters=15)
        pairs = brute_force_pairs(pos, box, 1.4)
        excl = {(int(i), int(j)) for i, j in topo.exclusion_pairs()}
        clashes = [(i, j) for i, j in map(tuple, pairs) if (i, j) not in excl]
        assert clashes == []

    def test_too_many_waters_rejected(self):
        with pytest.raises(RuntimeError):
            build_peptide_in_water(n_residues=2, n_waters=100_000)
