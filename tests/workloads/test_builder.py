"""NeRF internal-coordinate placement."""

import math

import numpy as np
import pytest

from repro.workloads import ChainBuilder, place_atom


def _angle(p, q, r):
    u, v = p - q, r - q
    return math.degrees(
        math.acos(np.dot(u, v) / (np.linalg.norm(u) * np.linalg.norm(v)))
    )


def _torsion(a, b, c, d):
    b1, b2, b3 = b - a, c - b, d - c
    c1, c2 = np.cross(b1, b2), np.cross(b2, b3)
    y = np.dot(np.cross(c1, c2), b2 / np.linalg.norm(b2))
    return math.degrees(math.atan2(y, np.dot(c1, c2)))


class TestPlaceAtom:
    A = np.array([0.0, 0.0, 0.0])
    B = np.array([1.5, 0.0, 0.0])
    C = np.array([2.1, 1.3, 0.0])

    @pytest.mark.parametrize("bond", [0.9, 1.5, 2.2])
    def test_bond_length(self, bond):
        d = place_atom(self.A, self.B, self.C, bond, math.radians(109.5), 0.4)
        assert np.linalg.norm(d - self.C) == pytest.approx(bond)

    @pytest.mark.parametrize("angle_deg", [60.0, 109.5, 150.0])
    def test_bond_angle(self, angle_deg):
        d = place_atom(self.A, self.B, self.C, 1.5, math.radians(angle_deg), 1.0)
        assert _angle(self.B, self.C, d) == pytest.approx(angle_deg, abs=1e-9)

    @pytest.mark.parametrize("torsion_deg", [-120.0, -57.0, 0.0, 60.0, 180.0])
    def test_torsion(self, torsion_deg):
        d = place_atom(self.A, self.B, self.C, 1.5, math.radians(100), math.radians(torsion_deg))
        measured = _torsion(self.A, self.B, self.C, d)
        diff = (measured - torsion_deg + 180) % 360 - 180
        assert diff == pytest.approx(0.0, abs=1e-9)

    def test_collinear_reference_rejected(self):
        with pytest.raises(ValueError):
            place_atom(self.A, self.B, np.array([3.0, 0.0, 0.0]), 1.0, 1.0, 0.0)

    def test_bad_bond_rejected(self):
        with pytest.raises(ValueError):
            place_atom(self.A, self.B, self.C, 0.0, 1.0, 0.0)


class TestChainBuilder:
    def test_add_and_lookup(self):
        cb = ChainBuilder()
        i = cb.add_xyz((1.0, 2.0, 3.0))
        assert i == 0
        assert np.allclose(cb.position(0), [1, 2, 3])
        assert len(cb) == 1

    def test_internal_placement(self):
        cb = ChainBuilder()
        a = cb.add_xyz((0, 0, 0))
        b = cb.add_xyz((1.5, 0, 0))
        c = cb.add_xyz((2.1, 1.3, 0))
        d = cb.add_internal(a, b, c, 1.2, math.radians(110), math.radians(60))
        coords = cb.coords()
        assert coords.shape == (4, 3)
        assert np.linalg.norm(coords[d] - coords[c]) == pytest.approx(1.2)

    def test_coords_returns_copy(self):
        cb = ChainBuilder()
        cb.add_xyz((0, 0, 0))
        c1 = cb.coords()
        c1[0, 0] = 99.0
        assert cb.position(0)[0] == 0.0
