"""The 3552-atom benchmark system: paper-matching composition."""

import numpy as np
import pytest

from repro.workloads import PME_GRID, TARGET_ATOMS, myoglobin_workload
from repro.workloads.myoglobin import (
    N_RESIDUES,
    N_SEGMENTS,
    N_WATERS,
    _sidechain_plan,
)


@pytest.fixture(scope="module")
def system():
    return myoglobin_workload()  # cached: built once per process


class TestComposition:
    def test_total_atom_count(self, system):
        assert system.n_atoms == TARGET_ATOMS == 3552

    def test_neutral(self, system):
        assert system.topology.total_charge() == pytest.approx(0.0, abs=1e-9)

    def test_pme_grid_matches_paper(self, system):
        assert system.pme_grid == PME_GRID == (80, 36, 48)

    def test_residue_count(self, system):
        protein_residues = {
            (a.segment, a.residue_index)
            for a in system.topology.atoms
            if a.segment.startswith("HLX")
        }
        assert len(protein_residues) == N_RESIDUES == 153

    def test_water_count(self, system):
        n_wat = sum(1 for a in system.topology.atoms if a.residue == "TIP3")
        assert n_wat == 3 * N_WATERS == 1011

    def test_hetero_groups_present(self, system):
        residues = {a.residue for a in system.topology.atoms}
        assert "CO" in residues and "SO4" in residues

    def test_segment_count(self, system):
        segments = {a.segment for a in system.topology.atoms if a.segment.startswith("HLX")}
        assert len(segments) == N_SEGMENTS == 8

    def test_protein_charge_plus_two(self, system):
        q = sum(
            a.charge for a in system.topology.atoms if a.segment.startswith("HLX")
        )
        assert q == pytest.approx(2.0, abs=1e-9)

    def test_sidechain_plan(self):
        ks = _sidechain_plan()
        assert len(ks) == 153
        assert ks.count(3) == 23
        assert ks.count(2) == 130


class TestGeometry:
    def test_all_atoms_in_box_neighbourhood(self, system):
        wrapped = system.box.wrap(system.positions)
        assert np.all(wrapped >= 0)
        assert np.all(wrapped < system.box.lengths)

    def test_no_steric_clashes(self, system):
        from repro.md.neighborlist import brute_force_pairs

        pairs = brute_force_pairs(system.positions, system.box, 1.4)
        excl = {(int(i), int(j)) for i, j in system.topology.exclusion_pairs()}
        clashes = [(i, j) for i, j in map(tuple, pairs) if (i, j) not in excl]
        assert clashes == []

    def test_deterministic_build(self, system):
        from repro.workloads import build_myoglobin

        again = build_myoglobin()
        assert np.array_equal(again.positions, system.positions)

    def test_box_from_grid(self, system):
        assert np.allclose(system.box.lengths, np.array(PME_GRID) * 1.2)


class TestEnergetics:
    def test_finite_energy_and_bounded_forces(self, system):
        from repro.workloads import myoglobin_system

        md = myoglobin_system("pme")
        breakdown, forces = md.energy_forces(system.positions)
        assert np.isfinite(breakdown.total)
        assert breakdown.bond == pytest.approx(0.0, abs=1e-6)
        assert np.abs(forces).max() < 500.0  # no catastrophic contact

    def test_workload_pair_count_realistic(self, system):
        """The paper's system has hundreds of thousands of cutoff pairs."""
        from repro.workloads import myoglobin_system

        md = myoglobin_system("pme")
        md.neighbor_list.ensure(system.positions)
        md.classic_energy_forces(system.positions)
        assert 200_000 < md.nonbonded.last_pair_count < 600_000
