"""Shared fixtures: small systems built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.md import CutoffScheme, MDSystem, PeriodicBox, default_forcefield
from repro.workloads import build_peptide_in_water, build_water_box


@pytest.fixture(scope="session")
def forcefield():
    return default_forcefield()


@pytest.fixture(scope="session")
def water_box_small(forcefield):
    """27 waters on a lattice: (topology, positions, box)."""
    return build_water_box(n_side=3, forcefield=forcefield)


@pytest.fixture(scope="session")
def peptide_system(forcefield):
    """A solvated 3-residue peptide with PME electrostatics."""
    topo, pos, box = build_peptide_in_water(
        n_residues=3, n_waters=20, forcefield=forcefield
    )
    system = MDSystem(
        topo,
        forcefield,
        box,
        CutoffScheme(r_cut=8.0, skin=1.5),
        electrostatics="pme",
        pme_grid=(16, 16, 16),
    )
    return system, pos


@pytest.fixture(scope="session")
def peptide_system_shift(forcefield):
    """The same solvated peptide with classic shifted electrostatics."""
    topo, pos, box = build_peptide_in_water(
        n_residues=3, n_waters=20, forcefield=forcefield
    )
    system = MDSystem(topo, forcefield, box, CutoffScheme(r_cut=8.0, skin=1.5))
    return system, pos


@pytest.fixture()
def rng():
    return np.random.default_rng(20020415)


def random_neutral_charges(rng: np.random.Generator, n: int) -> np.ndarray:
    q = rng.normal(size=n)
    return q - q.mean()


@pytest.fixture(scope="session")
def random_ionic_system():
    """A small random neutral charge cloud in a periodic box."""
    rng = np.random.default_rng(7)
    n = 20
    box = PeriodicBox(13.0, 11.0, 12.0)
    positions = rng.uniform(0.05, 0.95, (n, 3)) * box.lengths
    charges = rng.normal(size=n)
    charges -= charges.mean()
    return positions, charges, box
