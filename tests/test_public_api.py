"""The package's public surface: every ``__all__`` name resolves lazily."""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro


def test_every_public_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_all_is_sorted_and_complete():
    assert repro.__all__ == ["__version__", *sorted(repro._PUBLIC_API)]
    assert set(repro.__all__) <= set(dir(repro))


def test_unknown_attribute_raises_attribute_error():
    with pytest.raises(AttributeError, match="has no attribute 'no_such_name'"):
        repro.no_such_name


def test_star_import_exposes_the_documented_surface():
    namespace: dict = {}
    exec("from repro import *", namespace)
    for name in ("run_parallel_md", "RunOptions", "CampaignEngine", "ResultStore",
                 "merge_into_store", "work_campaign", "publish_campaign",
                 "analyze_trace", "build_workload",
                 "Board", "board_from_url", "HttpBoardClient", "CoordinatorServer",
                 "run_analysis", "AnalysisError"):
        assert name in namespace, name


def test_board_surface_is_coherent():
    """The coordinator API redesign's exports: one protocol, two
    interchangeable backends, one URL factory."""
    from repro import Board, HttpBoardClient, board_from_url
    from repro.campaign import LeaseBoard

    assert issubclass(LeaseBoard, Board)
    assert issubclass(HttpBoardClient, Board)
    assert isinstance(board_from_url("http://host:1"), HttpBoardClient)
    assert isinstance(board_from_url("file:board.json"), LeaseBoard)


def test_import_repro_stays_lazy():
    """``import repro`` must not drag in numpy-heavy subpackages (CLI startup)."""
    code = (
        "import sys, repro; "
        "heavy = [m for m in sys.modules if m.startswith('repro.parallel') "
        "or m.startswith('repro.campaign') or m.startswith('repro.experiments')]; "
        "print(','.join(heavy) or 'CLEAN')"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    assert out.stdout.strip() == "CLEAN"
