"""Span tracing: two clocks, Chrome export, and the zero-cost invariant."""

import json

import numpy as np
import pytest

from repro.instrument.timeline import Category, Timeline
from repro.instrument.tracing import (
    VIRTUAL_PID_BASE,
    SpanTracer,
    validate_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.t = 50.0

    def advance(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


class TestVirtualSide:
    def test_attributions_tile_the_rank_cursor(self):
        tracer = SpanTracer(clock=FakeClock())
        tl = Timeline()
        tracer.attach_rank(0, tl)
        tl.add(Category.COMP, 1.0)
        with tl.phase("pme"):
            tl.add(Category.COMM, 0.25)
        spans = [s for s in tracer.spans if s.pid == VIRTUAL_PID_BASE]
        assert [(s.name, s.start, s.duration) for s in spans] == [
            ("default:comp", 0.0, 1.0),
            ("pme:comm", 1.0, 0.25),
        ]
        assert tracer.virtual_seconds(0) == pytest.approx(1.25)
        assert tracer.virtual_seconds(0) == pytest.approx(tl.total_seconds())

    def test_zero_duration_attributions_advance_nothing_and_emit_nothing(self):
        tracer = SpanTracer(clock=FakeClock())
        tl = Timeline()
        tracer.attach_rank(3, tl)
        tl.add(Category.SYNC, 0.0)
        tl.add(Category.COMP, 2.0)
        (span,) = tracer.spans
        assert span.start == 0.0
        assert span.pid == VIRTUAL_PID_BASE + 3

    def test_ranks_get_distinct_pids(self):
        tracer = SpanTracer(clock=FakeClock())
        tls = [Timeline() for _ in range(3)]
        for r, tl in enumerate(tls):
            tracer.attach_rank(r, tl)
            tl.add(Category.COMP, 1.0)
        assert {s.pid for s in tracer.spans} == {
            VIRTUAL_PID_BASE, VIRTUAL_PID_BASE + 1, VIRTUAL_PID_BASE + 2,
        }


class TestWallSide:
    def test_span_context_manager_measures_the_clock(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("merge", track="store", n=3):
            clock.advance(2.0)
        (span,) = tracer.spans
        assert span.name == "merge"
        assert span.duration == pytest.approx(2.0)
        assert span.args["n"] == 3
        assert span.pid < VIRTUAL_PID_BASE

    def test_begin_end_carries_late_args(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        handle = tracer.begin("point", track="pool", key="abc")
        clock.advance(1.0)
        handle.end(status="ran")
        (span,) = tracer.spans
        assert span.args == {"key": "abc", "status": "ran"}

    def test_tracks_get_stable_distinct_pids(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("a", track="engine"):
            pass
        with tracer.span("b", track="pool"):
            pass
        with tracer.span("c", track="engine"):
            pass
        pids = [s.pid for s in tracer.spans]
        assert pids[0] == pids[2] != pids[1]


class TestChromeExport:
    def test_valid_document_with_named_pids(self):
        tracer = SpanTracer(clock=FakeClock())
        tl = Timeline()
        tracer.attach_rank(0, tl)
        tl.add(Category.COMP, 1.5)
        with tracer.span("host work"):
            pass
        doc = tracer.to_chrome()
        assert validate_chrome_trace(doc) == []
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert "rank 0 (virtual)" in names
        assert "host (wall)" in names
        slices = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        virtual = [ev for ev in slices if ev["pid"] == VIRTUAL_PID_BASE]
        assert virtual[0]["dur"] == pytest.approx(1.5e6)  # seconds -> us

    def test_write_round_trips_through_json(self, tmp_path):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("x"):
            pass
        path = tracer.write(tmp_path / "deep" / "trace.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_validator_catches_broken_documents(self):
        assert validate_chrome_trace({}) == ["no traceEvents list"]
        bad = {"traceEvents": [
            {"ph": "X", "name": "s", "ts": -1.0, "dur": 1.0, "pid": 9, "tid": 0},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("bad ts" in p for p in problems)
        assert any("unnamed pid" in p for p in problems)


@pytest.fixture(scope="module")
def myoglobin_pme_runs():
    """One traced + one untraced p=4 myoglobin-PME run (module-shared)."""
    from repro import (
        MDRunConfig,
        PlatformConfig,
        RunOptions,
        myoglobin_system,
        myoglobin_workload,
        run_parallel_md,
    )

    config = PlatformConfig(network="tcp-gige", middleware="mpi", cpus_per_node=1)
    spec = config.cluster_spec(4, seed=2002)
    mg = myoglobin_workload()
    run_config = MDRunConfig(n_steps=2)

    plain = run_parallel_md(
        myoglobin_system("pme"), mg.positions, spec,
        RunOptions(config=run_config),
    )
    tracer = SpanTracer()
    traced = run_parallel_md(
        myoglobin_system("pme"), mg.positions, spec,
        RunOptions(config=run_config, span_tracer=tracer),
    )
    return plain, traced, tracer


class TestTracedRunInvariants:
    """The hard invariant: tracing changes nothing and costs zero virtual time."""

    def test_traced_run_is_bit_identical(self, myoglobin_pme_runs):
        plain, traced, _ = myoglobin_pme_runs
        assert len(plain.energies) == len(traced.energies)
        for a, b in zip(plain.energies, traced.energies):
            assert a.total == b.total
        np.testing.assert_array_equal(plain.final_positions, traced.final_positions)
        assert plain.timelines == traced.timelines
        assert plain.wall_time() == traced.wall_time()

    def test_tracing_charges_zero_extra_virtual_seconds(self, myoglobin_pme_runs):
        _, traced, tracer = myoglobin_pme_runs
        for rank, tl in enumerate(traced.timelines):
            pid = VIRTUAL_PID_BASE + rank
            span_total = sum(s.duration for s in tracer.spans if s.pid == pid)
            # the spans tile the rank's attributed time exactly: no span
            # charged a single extra virtual second anywhere
            assert span_total == pytest.approx(tl.total_seconds(), abs=1e-12)
            assert tracer.virtual_seconds(rank) == pytest.approx(
                tl.total_seconds(), abs=1e-12
            )

    def test_trace_is_structurally_valid_chrome_json(self, myoglobin_pme_runs):
        _, traced, tracer = myoglobin_pme_runs
        doc = json.loads(json.dumps(tracer.to_chrome()))
        assert validate_chrome_trace(doc) == []
        slices = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        pids = {ev["pid"] for ev in slices}
        assert pids == {VIRTUAL_PID_BASE + r for r in range(4)}

    def test_span_names_match_timeline_phases_and_categories(self, myoglobin_pme_runs):
        _, traced, tracer = myoglobin_pme_runs
        expected = set()
        for tl in traced.timelines:
            for phase, totals in tl.phases.items():
                for cat in Category.ALL:
                    if getattr(totals, cat) > 0:
                        expected.add(f"{phase}:{cat}")
        assert {s.name for s in tracer.spans} == expected
        assert {s.args["category"] for s in tracer.spans} <= set(Category.ALL)
        assert {s.cat for s in tracer.spans} <= {"default", "classic", "pme"}
