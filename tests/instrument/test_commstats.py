"""Communication-speed statistics (the Figure 7 metric)."""

import pytest

from repro.cluster.state import TransferRecord
from repro.instrument import MIN_DATA_BYTES, CommTrace, communication_speeds


def _rec(nbytes, duration, start=0.0, src=0, dst=1):
    return TransferRecord(
        start=start, end=start + duration, src_node=src, dst_node=dst, nbytes=nbytes
    )


class TestCommunicationSpeeds:
    def test_empty(self):
        stats = communication_speeds([])
        assert stats.n_transfers == 0
        assert stats.mean == 0.0

    def test_single_transfer_rate(self):
        # 1 MB in 0.02 s -> 50 MB/s
        stats = communication_speeds([_rec(1_000_000, 0.02)])
        assert stats.mean == pytest.approx(50.0)
        assert stats.minimum == stats.maximum == pytest.approx(50.0)
        assert stats.n_transfers == 1

    def test_small_messages_excluded(self):
        stats = communication_speeds([_rec(100, 0.001), _rec(1_000_000, 0.02)])
        assert stats.n_transfers == 1
        assert stats.mean == pytest.approx(50.0)

    def test_threshold_boundary(self):
        at = _rec(MIN_DATA_BYTES, 0.001)
        below = _rec(MIN_DATA_BYTES - 1, 0.001)
        assert communication_speeds([at]).n_transfers == 1
        assert communication_speeds([below]).n_transfers == 0

    def test_min_max_spread(self):
        stats = communication_speeds([_rec(1_000_000, 0.01), _rec(1_000_000, 0.1)])
        assert stats.maximum == pytest.approx(100.0)
        assert stats.minimum == pytest.approx(10.0)
        assert stats.spread == pytest.approx(90.0)
        assert stats.mean == pytest.approx(55.0)

    def test_zero_duration_excluded(self):
        stats = communication_speeds([_rec(1_000_000, 0.0)])
        assert stats.n_transfers == 0

    def test_all_transfers_below_threshold_is_the_empty_summary(self):
        small = [_rec(MIN_DATA_BYTES - 1, 0.001, start=float(i)) for i in range(5)]
        stats = communication_speeds(small)
        assert stats.n_transfers == 0
        assert (stats.mean, stats.minimum, stats.maximum) == (0.0, 0.0, 0.0)
        assert stats.spread == 0.0

    def test_single_node_traffic_still_counts_by_rate(self):
        # one node talking to itself (src == dst): the summary is over
        # transfer records, not node pairs, so it must not divide by zero
        # or drop the observation
        stats = communication_speeds([_rec(1_000_000, 0.02, src=0, dst=0)])
        assert stats.n_transfers == 1
        assert stats.mean == pytest.approx(50.0)
        assert stats.spread == 0.0


class TestEmptyCommTrace:
    def test_empty_trace_has_no_events_of_any_kind(self):
        trace = CommTrace()
        assert len(trace) == 0
        assert trace.by_kind("send") == []
        assert trace.by_kind("recv") == []
        assert trace.by_kind("collective") == []

    def test_empty_trace_collective_sequence_is_empty_for_any_rank(self):
        trace = CommTrace()
        assert trace.collective_ops(0) == []
        assert trace.collective_ops(17) == []

    def test_empty_trace_analyzes_clean(self):
        from repro.analysis import analyze_trace

        assert analyze_trace(CommTrace(), 4) == []
