"""Timeline accounting: phases, categories, overrides."""

import pytest

from repro.instrument import KNOWN_PHASES, Category, PhaseTotals, Timeline, register_phase


class TestPhaseTotals:
    def test_add_and_total(self):
        t = PhaseTotals()
        t.add("comp", 1.0)
        t.add("comm", 0.5)
        t.add("sync", 0.25)
        assert t.total == pytest.approx(1.75)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PhaseTotals().add("comp", -1.0)

    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            PhaseTotals().add("io", 1.0)

    def test_addition_operator(self):
        a = PhaseTotals(comp=1.0, comm=2.0)
        b = PhaseTotals(comp=0.5, sync=1.0)
        c = a + b
        assert (c.comp, c.comm, c.sync) == (1.5, 2.0, 1.0)

    def test_fractions_sum_to_one(self):
        t = PhaseTotals(comp=3.0, comm=1.0, sync=1.0)
        f = t.fractions()
        assert sum(f.values()) == pytest.approx(1.0)
        assert f["comp"] == pytest.approx(0.6)

    def test_fractions_of_empty_phase(self):
        assert PhaseTotals().fractions() == {"comp": 0.0, "comm": 0.0, "sync": 0.0}


class TestTimeline:
    def test_default_phase(self):
        tl = Timeline()
        tl.add(Category.COMP, 1.0)
        assert tl.phase_totals("default").comp == 1.0

    def test_phase_context(self):
        tl = Timeline()
        with tl.phase("classic"):
            tl.add(Category.COMP, 2.0)
            with tl.phase("pme"):
                tl.add(Category.COMM, 1.0)
            tl.add(Category.SYNC, 0.5)
        assert tl.phase_totals("classic").comp == 2.0
        assert tl.phase_totals("classic").sync == 0.5
        assert tl.phase_totals("pme").comm == 1.0
        assert tl.current_phase == "default"

    def test_grand_total(self):
        tl = Timeline()
        with tl.phase("classic"):
            tl.add(Category.COMP, 1.0)
        with tl.phase("pme"):
            tl.add(Category.COMM, 2.0)
        g = tl.grand_total()
        assert g.total == pytest.approx(3.0)
        assert tl.total_seconds() == pytest.approx(3.0)

    def test_category_override(self):
        tl = Timeline()
        with tl.as_category(Category.SYNC):
            tl.add(Category.COMM, 1.0)
            tl.add(Category.COMP, 0.5)
        assert tl.grand_total().sync == pytest.approx(1.5)
        assert tl.grand_total().comm == 0.0

    def test_override_restores(self):
        tl = Timeline()
        with tl.as_category(Category.SYNC):
            pass
        tl.add(Category.COMM, 1.0)
        assert tl.grand_total().comm == 1.0

    def test_override_validates(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            with tl.as_category("nope"):
                pass

    def test_unknown_phase_is_empty(self):
        assert Timeline().phase_totals("missing").total == 0.0


class TestKnownPhases:
    def test_phase_context_rejects_unregistered_name(self):
        tl = Timeline()
        with pytest.raises(ValueError, match="unknown phase"):
            with tl.phase("typo-phase"):
                pass

    def test_add_rejects_unregistered_current_phase(self):
        tl = Timeline(_current="typo-phase")  # bypass the context manager
        with pytest.raises(ValueError, match="unknown phase"):
            tl.add(Category.COMP, 1.0)

    def test_register_phase_opens_a_new_bucket(self):
        register_phase("ewald-test-phase")
        try:
            tl = Timeline()
            with tl.phase("ewald-test-phase"):
                tl.add(Category.COMP, 1.0)
            assert tl.phase_totals("ewald-test-phase").comp == 1.0
        finally:
            KNOWN_PHASES.discard("ewald-test-phase")

    def test_register_phase_validates_the_name(self):
        with pytest.raises(ValueError):
            register_phase("")
        with pytest.raises(ValueError):
            register_phase(None)


class TestSink:
    def test_sink_sees_every_attribution_without_changing_totals(self):
        seen = []
        tl = Timeline()
        tl.attach_sink(lambda phase, cat, dt: seen.append((phase, cat, dt)))
        tl.add(Category.COMP, 1.0)
        with tl.phase("pme"):
            tl.add(Category.COMM, 0.5)
        assert seen == [("default", "comp", 1.0), ("pme", "comm", 0.5)]
        assert tl.total_seconds() == pytest.approx(1.5)

    def test_sink_sees_the_forced_category(self):
        seen = []
        tl = Timeline()
        tl.attach_sink(lambda phase, cat, dt: seen.append(cat))
        with tl.as_category(Category.SYNC):
            tl.add(Category.COMM, 1.0)
        assert seen == ["sync"]

    def test_traced_timeline_equals_untraced(self):
        a, b = Timeline(), Timeline()
        b.attach_sink(lambda *args: None)
        a.add(Category.COMP, 1.0)
        b.add(Category.COMP, 1.0)
        assert a == b
