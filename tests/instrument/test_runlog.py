"""Structured JSONL run logs and cross-host history reconstruction."""

import json

from repro.instrument.runlog import RunLog, read_runlog, reconstruct_history


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        self.t += 1.0
        return self.t


class TestRunLog:
    def test_events_carry_context_and_land_on_disk(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = RunLog(path, now=FakeClock(), campaign="abc123")
        log.log("campaign_start", n_points=3)
        log.log("point_hit", key="k1")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "campaign_start"
        assert first["campaign"] == "abc123"
        assert "host" in first

    def test_bind_shares_the_file_and_adds_context(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = RunLog(path, now=FakeClock(), campaign="abc")
        child = log.bind(key="k1", attempt=2)
        child.log("lease_claim")
        (ev,) = list(read_runlog(path))
        assert (ev["campaign"], ev["key"], ev["attempt"]) == ("abc", "k1", 2)
        # the parent saw the child's event too (shared buffer)
        assert log.events[-1]["event"] == "lease_claim"

    def test_memory_only_log_writes_nothing(self):
        log = RunLog(None, now=FakeClock())
        log.log("x")
        assert log.path is None
        assert len(log.events) == 1

    def test_read_skips_a_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        RunLog(path, now=FakeClock()).log("ok")
        with path.open("a") as fh:
            fh.write('{"event": "torn", "ts"')  # crashed mid-write
        events = list(read_runlog(path))
        assert [e["event"] for e in events] == ["ok"]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert list(read_runlog(tmp_path / "nope.jsonl")) == []


class TestReconstructHistory:
    def test_merges_hosts_and_orders_each_point(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        log_a = RunLog(a, now=FakeClock(0.0), worker="wa")
        log_b = RunLog(b, now=FakeClock(0.5), worker="wb")
        log_a.log("lease_claim", key="k1", attempt=0)
        log_b.log("lease_claim", key="k2", attempt=0)
        log_a.log("point_executed", key="k1", attempt=0)
        log_b.log("lease_complete", key="k2", attempt=0)
        log_a.log("worker_done")

        history = reconstruct_history([a, b])
        assert [e["event"] for e in history["k1"]] == ["lease_claim", "point_executed"]
        assert [e["event"] for e in history["k2"]] == ["lease_claim", "lease_complete"]
        assert {e["worker"] for e in history["k1"]} == {"wa"}
        assert [e["event"] for e in history[""]] == ["worker_done"]

    def test_ties_break_on_attempt_then_event(self):
        events = [
            {"ts": 1.0, "event": "b", "key": "k", "attempt": 2},
            {"ts": 1.0, "event": "a", "key": "k", "attempt": 1},
        ]
        history = reconstruct_history([events])
        assert [e["attempt"] for e in history["k"]] == [1, 2]
