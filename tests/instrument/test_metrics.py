"""Metrics registry: counters, gauges, histograms, snapshot/delta/merge."""

import json

import pytest

from repro.instrument.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metrics,
)


class TestCounter:
    def test_increment_and_snapshot_delta(self):
        c = Counter("events")
        c.increment()
        c.increment(3)
        base = c.snapshot()
        c.increment()
        assert c.count == 5
        assert c.delta(base) == 1

    def test_labels_split_the_total(self):
        c = Counter("points")
        c.increment(status="hit")
        c.increment(2, status="ran")
        c.increment(status="hit")
        assert c.count == 4
        assert c.labels == {"status=hit": 2, "status=ran": 2}

    def test_reset(self):
        c = Counter("events")
        c.increment(5, kind="x")
        c.reset()
        assert c.count == 0
        assert c.labels == {}


class TestGauge:
    def test_set_and_snapshot(self):
        g = Gauge("depth")
        g.set(7)
        assert g.snapshot() == 7.0


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram("wall")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)
        assert (h.minimum, h.maximum) == (1.0, 3.0)

    def test_empty_doc_has_no_infinities(self):
        doc = Histogram("wall").to_doc()
        assert doc == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").increment(status="ok")
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(1.0)
        doc = json.loads(json.dumps(reg.snapshot()))
        assert doc["counters"]["c"]["total"] == 1
        assert doc["gauges"]["g"] == 2.5
        assert doc["histograms"]["h"]["count"] == 1

    def test_delta_reports_only_the_window(self):
        reg = MetricsRegistry()
        reg.counter("c").increment(10)
        reg.counter("quiet").increment(5)
        reg.histogram("h").observe(1.0)
        before = reg.snapshot()
        reg.counter("c").increment(2, status="ran")
        reg.histogram("h").observe(4.0)
        delta = reg.delta(before)
        assert delta["counters"]["c"] == {"total": 2, "labels": {"status=ran": 2}}
        assert "quiet" not in delta["counters"]
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == pytest.approx(4.0)

    def test_empty_delta_is_empty(self):
        reg = MetricsRegistry()
        reg.counter("c").increment()
        before = reg.snapshot()
        delta = reg.delta(before)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}


class TestMerge:
    def test_counters_add_and_labels_fold(self):
        a = {"counters": {"c": {"total": 2, "labels": {"w=a": 2}}}}
        b = {"counters": {"c": {"total": 3, "labels": {"w=b": 3}}}}
        merged = merge_metrics(a, b)
        assert merged["counters"]["c"]["total"] == 5
        assert merged["counters"]["c"]["labels"] == {"w=a": 2, "w=b": 3}

    def test_histograms_widen(self):
        a = {"histograms": {"h": {"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0}}}
        b = {"histograms": {"h": {"count": 1, "sum": 9.0, "min": 9.0, "max": 9.0}}}
        merged = merge_metrics(a, b)
        assert merged["histograms"]["h"] == {
            "count": 3, "sum": 12.0, "min": 1.0, "max": 9.0,
        }

    def test_gauges_keep_largest_magnitude(self):
        merged = merge_metrics({"gauges": {"g": -5.0}}, {"gauges": {"g": 2.0}})
        assert merged["gauges"]["g"] == -5.0

    def test_merge_of_nothing_is_empty(self):
        assert merge_metrics() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestBackCompatShim:
    def test_event_counters_are_registry_backed(self):
        from repro.instrument import FORCE_EVALUATIONS
        from repro.instrument.metrics import REGISTRY

        assert FORCE_EVALUATIONS is REGISTRY.counter("md.force_evaluations")
        base = FORCE_EVALUATIONS.snapshot()
        FORCE_EVALUATIONS.increment()
        assert FORCE_EVALUATIONS.delta(base) == 1
