"""Transfer planning: NIC serialization, IRQ queueing, congestion, records."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    ClusterState,
    NodeSpec,
    myrinet_gm,
    score_gigabit_ethernet,
    tcp_gigabit_ethernet,
)


def _state(n_ranks=4, network=None, cpus=1, seed=1):
    spec = ClusterSpec(
        n_ranks=n_ranks,
        network=network or tcp_gigabit_ethernet(),
        node=NodeSpec(cpus_per_node=cpus),
        seed=seed,
    )
    return ClusterState(spec)


class TestBasicTiming:
    def test_duration_includes_latency(self):
        st = _state(network=myrinet_gm())
        plan = st.plan_transfer(0, 1, 0, ready_time=0.0)
        assert plan.duration >= myrinet_gm().latency

    def test_larger_messages_take_longer(self):
        st = _state(network=score_gigabit_ethernet())
        small = st.plan_transfer(0, 1, 10_000, ready_time=0.0)
        big = st.plan_transfer(2, 3, 1_000_000, ready_time=0.0)
        assert big.duration > small.duration

    def test_start_respects_ready_time(self):
        st = _state()
        plan = st.plan_transfer(0, 1, 1000, ready_time=5.0)
        assert plan.start >= 5.0

    def test_negative_bytes_rejected(self):
        st = _state()
        with pytest.raises(ValueError):
            st.plan_transfer(0, 1, -1, 0.0)

    def test_rate_property(self):
        st = _state(network=myrinet_gm())
        plan = st.plan_transfer(0, 1, 1_000_000, ready_time=0.0)
        assert 0 < plan.rate < myrinet_gm().bandwidth


class TestNicSerialization:
    def test_same_source_transfers_queue(self):
        st = _state(network=score_gigabit_ethernet())
        first = st.plan_transfer(0, 1, 1_000_000, ready_time=0.0)
        second = st.plan_transfer(0, 2, 1_000_000, ready_time=0.0)
        assert second.start >= first.start + 1_000_000 / score_gigabit_ethernet().bandwidth * 0.5

    def test_disjoint_node_pairs_overlap(self):
        st = _state(network=score_gigabit_ethernet())
        a = st.plan_transfer(0, 1, 1_000_000, ready_time=0.0)
        b = st.plan_transfer(2, 3, 1_000_000, ready_time=0.0)
        assert b.start == pytest.approx(a.start)


class TestInterrupts:
    def test_tcp_delivery_after_irq(self):
        st = _state(network=tcp_gigabit_ethernet())
        nbytes = 100_000
        plan = st.plan_transfer(0, 1, nbytes, ready_time=0.0)
        irq_floor = tcp_gigabit_ethernet().packets(nbytes) * tcp_gigabit_ethernet().irq_cost
        assert plan.duration > irq_floor

    def test_irq_queueing_serializes_receives(self):
        st = _state(network=tcp_gigabit_ethernet())
        a = st.plan_transfer(0, 1, 500_000, ready_time=0.0)
        b = st.plan_transfer(2, 1, 500_000, ready_time=0.0)  # same receiver
        assert b.end > a.end

    def test_dual_cpu_irq_multiplier(self):
        uni = _state(network=tcp_gigabit_ethernet(), cpus=1, seed=3)
        dual = _state(n_ranks=8, network=tcp_gigabit_ethernet(), cpus=2, seed=3)
        n = 200_000
        p_uni = uni.plan_transfer(0, 1, n, 0.0)
        p_dual = dual.plan_transfer(0, 1, n, 0.0)
        assert p_dual.duration > p_uni.duration

    def test_score_has_no_irq_tail(self):
        st = _state(network=score_gigabit_ethernet())
        plan = st.plan_transfer(0, 1, 100_000, ready_time=0.0)
        net = score_gigabit_ethernet()
        wire_min = net.latency + 100_000 / net.bandwidth
        # duration is close to the pure wire time (efficiency < 1 adds some)
        assert plan.duration < 3 * wire_min


class TestIntranode:
    def test_same_node_uses_shared_path(self):
        st = _state(n_ranks=8, network=myrinet_gm(), cpus=2)
        plan = st.plan_transfer(0, 0, 100_000, ready_time=0.0)
        assert plan.intranode
        path = myrinet_gm().intranode
        assert plan.duration == pytest.approx(path.latency + 100_000 / path.bandwidth)

    def test_intranode_not_recorded_as_wire_transfer(self):
        st = _state(n_ranks=8, network=myrinet_gm(), cpus=2)
        st.plan_transfer(0, 0, 100_000, ready_time=0.0)
        assert len(st.transfers) == 0

    def test_tcp_loopback_pays_irq(self):
        st = _state(n_ranks=8, network=tcp_gigabit_ethernet(), cpus=2)
        path = tcp_gigabit_ethernet().intranode
        plan = st.plan_transfer(0, 0, 200_000, ready_time=0.0)
        pure = path.latency + 200_000 / path.bandwidth
        assert plan.duration > pure


class TestCongestionAndVariability:
    def test_determinism_under_seed(self):
        a = _state(seed=42)
        b = _state(seed=42)
        for _ in range(10):
            pa = a.plan_transfer(0, 1, 50_000, ready_time=0.0)
            pb = b.plan_transfer(0, 1, 50_000, ready_time=0.0)
            assert pa.end == pb.end

    def test_different_seeds_differ(self):
        ends_a = [
            _state(seed=1).plan_transfer(0, 1, 50_000, 0.0).end for _ in range(1)
        ]
        ends_b = [
            _state(seed=2).plan_transfer(0, 1, 50_000, 0.0).end for _ in range(1)
        ]
        assert ends_a != ends_b

    def test_pending_load_reduces_efficiency(self):
        st = _state(n_ranks=16)
        lone = st.sample_efficiency(0.0)
        # pile up pending transfers
        for i in range(0, 12, 2):
            st.plan_transfer(i % 4, (i + 1) % 4, 2_000_000, ready_time=0.0)
        crowded = np.mean([st.sample_efficiency(0.0) for _ in range(20)])
        assert crowded < lone

    def test_efficiency_floor(self):
        st = _state()
        for _ in range(50):
            assert st.sample_efficiency(0.0) >= 0.06 - 1e-12

    def test_transfers_recorded(self):
        st = _state()
        st.plan_transfer(0, 1, 123_456, ready_time=0.0)
        assert len(st.transfers) == 1
        rec = st.transfers[0]
        assert rec.nbytes == 123_456
        assert rec.src_node == 0 and rec.dst_node == 1
        assert rec.rate > 0
