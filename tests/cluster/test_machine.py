"""Cluster topology: placement, node counts, validation."""

import pytest

from repro.cluster import ClusterSpec, NodeSpec, tcp_gigabit_ethernet
from repro.cluster.machine import DUAL_CPU_MEMORY_CONTENTION


class TestNodeSpec:
    def test_defaults(self):
        node = NodeSpec()
        assert node.cpus_per_node == 1
        assert node.cpu_speed == 1.0

    def test_rejects_odd_cpu_counts(self):
        with pytest.raises(ValueError):
            NodeSpec(cpus_per_node=4)
        with pytest.raises(ValueError):
            NodeSpec(cpus_per_node=0)

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            NodeSpec(cpu_speed=0.0)


class TestClusterSpec:
    def test_uni_processor_placement(self):
        spec = ClusterSpec(n_ranks=4, network=tcp_gigabit_ethernet())
        assert spec.n_nodes == 4
        assert [spec.node_of(r) for r in range(4)] == [0, 1, 2, 3]

    def test_dual_processor_placement(self):
        spec = ClusterSpec(
            n_ranks=8, network=tcp_gigabit_ethernet(), node=NodeSpec(cpus_per_node=2)
        )
        assert spec.n_nodes == 4
        assert [spec.node_of(r) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_odd_rank_count_on_dual(self):
        spec = ClusterSpec(
            n_ranks=5, network=tcp_gigabit_ethernet(), node=NodeSpec(cpus_per_node=2)
        )
        assert spec.n_nodes == 3
        assert spec.ranks_on(2) == [4]

    def test_ranks_on_node(self):
        spec = ClusterSpec(
            n_ranks=8, network=tcp_gigabit_ethernet(), node=NodeSpec(cpus_per_node=2)
        )
        assert spec.ranks_on(1) == [2, 3]

    def test_rejects_too_many_nodes(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_ranks=17, network=tcp_gigabit_ethernet())
        # 32 ranks on 16 dual nodes is fine
        ClusterSpec(
            n_ranks=32, network=tcp_gigabit_ethernet(), node=NodeSpec(cpus_per_node=2)
        )

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_ranks=0, network=tcp_gigabit_ethernet())

    def test_node_of_out_of_range(self):
        spec = ClusterSpec(n_ranks=2, network=tcp_gigabit_ethernet())
        with pytest.raises(ValueError):
            spec.node_of(2)

    def test_compute_scale_uni(self):
        spec = ClusterSpec(n_ranks=2, network=tcp_gigabit_ethernet())
        assert spec.compute_scale == 1.0

    def test_compute_scale_dual_contention(self):
        spec = ClusterSpec(
            n_ranks=2, network=tcp_gigabit_ethernet(), node=NodeSpec(cpus_per_node=2)
        )
        assert spec.compute_scale == pytest.approx(DUAL_CPU_MEMORY_CONTENTION)

    def test_compute_scale_fast_cpu(self):
        spec = ClusterSpec(
            n_ranks=2, network=tcp_gigabit_ethernet(), node=NodeSpec(cpu_speed=2.0)
        )
        assert spec.compute_scale == pytest.approx(0.5)

    def test_describe_mentions_shape(self):
        spec = ClusterSpec(n_ranks=4, network=tcp_gigabit_ethernet())
        text = spec.describe()
        assert "4 ranks" in text and "tcp-gige" in text
