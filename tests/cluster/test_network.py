"""Network presets: parameter sanity and the paper's ordering claims."""

import pytest

from repro.cluster import (
    NETWORKS,
    NetworkParams,
    IntranodeParams,
    fast_ethernet_tcp,
    myrinet_gm,
    score_gigabit_ethernet,
    tcp_gigabit_ethernet,
)


class TestPresets:
    def test_registry_complete(self):
        assert set(NETWORKS) == {
            "tcp-gige",
            "score-gige",
            "myrinet",
            "tcp-fast-ethernet",
            "wide-area-grid",
        }

    def test_wide_area_grid_extreme(self):
        from repro.cluster import wide_area_grid

        grid = wide_area_grid()
        assert grid.latency > 100 * tcp_gigabit_ethernet().latency
        assert grid.bandwidth < 0.1 * tcp_gigabit_ethernet().bandwidth
        assert grid.variability > tcp_gigabit_ethernet().variability

    def test_latency_ordering(self):
        """Myrinet < SCore < TCP (the paper's core claim about overheads)."""
        assert myrinet_gm().latency < score_gigabit_ethernet().latency
        assert score_gigabit_ethernet().latency < tcp_gigabit_ethernet().latency

    def test_overhead_ordering(self):
        assert myrinet_gm().send_overhead < score_gigabit_ethernet().send_overhead
        assert score_gigabit_ethernet().send_overhead < tcp_gigabit_ethernet().send_overhead

    def test_bandwidth_ordering(self):
        assert myrinet_gm().bandwidth > score_gigabit_ethernet().bandwidth
        assert fast_ethernet_tcp().bandwidth < tcp_gigabit_ethernet().bandwidth

    def test_only_tcp_uses_interrupts(self):
        assert tcp_gigabit_ethernet().uses_interrupts
        assert fast_ethernet_tcp().uses_interrupts
        assert not score_gigabit_ethernet().uses_interrupts
        assert not myrinet_gm().uses_interrupts

    def test_tcp_variability_larger(self):
        tcp = tcp_gigabit_ethernet()
        assert tcp.variability > score_gigabit_ethernet().variability
        assert tcp.congestion_variability > myrinet_gm().congestion_variability

    def test_smp_penalties_only_on_tcp(self):
        assert tcp_gigabit_ethernet().smp_efficiency_penalty < 1.0
        assert score_gigabit_ethernet().smp_efficiency_penalty == 1.0
        assert myrinet_gm().smp_irq_multiplier == 1.0


class TestHelpers:
    def test_packets(self):
        net = tcp_gigabit_ethernet()
        assert net.packets(0) == 1
        assert net.packets(1) == 1
        assert net.packets(1460) == 1
        assert net.packets(1461) == 2
        assert net.packets(14600) == 10

    def test_host_cost_scales(self):
        net = tcp_gigabit_ethernet()
        assert net.host_cost(2000) == pytest.approx(2 * net.host_cost(1000))

    def test_validation(self):
        base = tcp_gigabit_ethernet()
        with pytest.raises(ValueError):
            NetworkParams(
                name="bad",
                latency=1e-6,
                bandwidth=0.0,
                send_overhead=0,
                recv_overhead=0,
                cpu_byte_cost=0,
                packet_size=1000,
                packet_overhead=0,
                eager_threshold=1000,
                base_efficiency=0.5,
                congestion_sensitivity=0,
                variability=0,
                congestion_variability=0,
                uses_interrupts=False,
                irq_cost=0,
                intranode=base.intranode,
            )
        with pytest.raises(ValueError):
            NetworkParams(
                name="bad",
                latency=1e-6,
                bandwidth=1e8,
                send_overhead=0,
                recv_overhead=0,
                cpu_byte_cost=0,
                packet_size=1000,
                packet_overhead=0,
                eager_threshold=1000,
                base_efficiency=1.5,
                congestion_sensitivity=0,
                variability=0,
                congestion_variability=0,
                uses_interrupts=False,
                irq_cost=0,
                intranode=base.intranode,
            )

    def test_intranode_params(self):
        path = IntranodeParams(latency=1e-6, bandwidth=1e8, uses_interrupts=False)
        assert path.bandwidth == 1e8
