#!/usr/bin/env python
"""Characterize your own parallel code on the simulated cluster.

The workload-characterization harness is not CHARMM-specific: any SPMD
program written as a generator over the simulated MPI endpoint can be
measured on every platform of the factor space.  This example
characterizes a 1-D halo-exchange stencil (a classic 'easy parallelism'
code) and contrasts its breakdown with CHARMM's.

Run:  python examples/characterize_custom_code.py        (~10 seconds)
"""

import numpy as np

from repro.cluster import ClusterSpec, NETWORKS
from repro.core import format_table
from repro.mpi import MPIWorld
from repro.sim import Simulator

CELLS_PER_RANK = 200_000
STEPS = 20
FLOP_TIME = 4e-9  # seconds per cell update on the reference CPU


def stencil_rank(ep, n_steps: int):
    """Jacobi sweep over a local strip with halo exchange to neighbours."""
    local = np.full(CELLS_PER_RANK + 2, float(ep.rank))
    left = (ep.rank - 1) % ep.size
    right = (ep.rank + 1) % ep.size
    for step in range(n_steps):
        if ep.size > 1:
            # exchange one-cell halos with both neighbours (split phase)
            r1 = yield from ep.irecv(left, tag=2 * step)
            r2 = yield from ep.irecv(right, tag=2 * step + 1)
            s1 = yield from ep.isend(right, local[-2:-1], tag=2 * step)
            s2 = yield from ep.isend(left, local[1:2], tag=2 * step + 1)
            local[0:1] = yield from r1.wait()
            local[-1:] = yield from r2.wait()
            yield from s1.wait()
            yield from s2.wait()
        # interior update: real arithmetic, charged through the cost model
        local[1:-1] = 0.5 * local[1:-1] + 0.25 * (local[:-2] + local[2:])
        yield from ep.compute(CELLS_PER_RANK * FLOP_TIME)
    return float(local[1:-1].mean())


def characterize(network_name: str, p: int) -> dict:
    sim = Simulator()
    spec = ClusterSpec(n_ranks=p, network=NETWORKS[network_name](), seed=5)
    world = MPIWorld(sim, spec)
    procs = [
        sim.spawn(stencil_rank(world.endpoints[r], STEPS), name=f"r{r}")
        for r in range(p)
    ]
    sim.run()
    totals = [ep.timeline.grand_total() for ep in world.endpoints]
    wall = max(t.total for t in totals)
    return {
        "wall": wall,
        "comp": sum(t.comp for t in totals) / p,
        "comm": sum(t.comm for t in totals) / p,
        "sync": sum(t.sync for t in totals) / p,
        "result": procs[0].result,
    }


def main() -> None:
    print("Characterizing a halo-exchange stencil on the simulated cluster...\n")
    rows = []
    serial = characterize("tcp-gige", 1)["wall"]
    for network in ("tcp-gige", "score-gige", "myrinet"):
        for p in (2, 4, 8, 16):
            m = characterize(network, p)
            overhead = (m["comm"] + m["sync"]) / (m["comp"] + m["comm"] + m["sync"])
            rows.append(
                [
                    network,
                    p,
                    m["wall"],
                    serial / m["wall"],  # weak-scaling efficiency
                    100 * overhead,
                ]
            )
    print(
        format_table(
            ["network", "p", "wall (s)", "efficiency", "overhead %"], rows, precision=3
        )
    )
    print(
        "\nA surface-to-volume code like this one scales almost perfectly even on"
        "\nTCP/IP — unlike CHARMM's PME, whose all-to-all transposes need the whole"
        "\nbisection. 'Easy parallelism' is a property of the communication pattern."
    )


if __name__ == "__main__":
    main()
