#!/usr/bin/env python
"""Equilibrate a rigid-water box, then measure observables.

A production-style serial workflow using the newer engine features:

1. rigid TIP3-like waters (SHAKE/RATTLE) allow a 2 fs timestep;
2. Berendsen weak coupling equilibrates to 300 K;
3. an NVE measurement run collects temperature, energy drift, radius of
   gyration and mean-squared displacement;
4. the final structure is written as PDB and XYZ.

Run:  python examples/equilibrate_and_measure.py
"""

import io

import numpy as np

from repro.md import (
    BerendsenThermostat,
    ConstrainedVerlet,
    CutoffScheme,
    MDSystem,
    default_forcefield,
    kinetic_energy,
    mean_squared_displacement,
    rigid_water_constraints,
    temperature,
    write_pdb,
    write_xyz,
)
from repro import build_water_box


def main() -> None:
    print("Building a 27-water box with rigid-water constraints...")
    ff = default_forcefield()
    topology, positions, box = build_water_box(n_side=3, forcefield=ff)
    system = MDSystem(topology, ff, box, CutoffScheme(r_cut=4.0, skin=1.2))
    constraints = rigid_water_constraints(topology, ff)
    md = ConstrainedVerlet(system, constraints, dt=0.002)  # 2 fs
    print(f"  atoms: {topology.n_atoms}, constraints: {constraints.n_constraints}, "
          f"kinetic DOF: {md.n_dof}")

    print("\nEquilibrating at 300 K (the melting lattice keeps releasing strain")
    print("heat, so the bath must carry it away — Berendsen, tau = 0.01 ps)...")
    thermostat = BerendsenThermostat(
        target=300.0, tau=0.01, n_constraints=constraints.n_constraints
    )
    state = md.initialize(positions, temperature=50.0, seed=11)
    for block in range(16):
        for _ in range(25):
            state = md.step(state)
            state.velocities[:] = thermostat.apply(
                system.masses, state.velocities, md.dt
            )
        t = temperature(system.masses, state.velocities,
                        n_constraints=constraints.n_constraints)
        if block % 4 == 3:
            print(f"  t = {state.step * md.dt * 1e3:5.0f} fs   T = {t:6.1f} K")

    print("\nNVT measurement run (150 steps = 300 fs, thermostat on)...")
    frames = [state.positions.copy()]
    temps = []
    for _ in range(150):
        state = md.step(state)
        state.velocities[:] = thermostat.apply(system.masses, state.velocities, md.dt)
        frames.append(state.positions.copy())
        temps.append(
            temperature(system.masses, state.velocities,
                        n_constraints=constraints.n_constraints)
        )
    msd = mean_squared_displacement(np.array(frames), box=box)
    print(f"  mean T: {np.mean(temps):.1f} K (sigma {np.std(temps):.1f})")
    print(f"  MSD at 300 fs: {msd[-1]:.3f} A^2 (liquid-like diffusion)")

    print("\nShort NVE check (50 steps, thermostat off) — symplectic drift:")
    e0 = state.potential.total + kinetic_energy(system.masses, state.velocities)
    state = md.run(state, 50)
    e1 = state.potential.total + kinetic_energy(system.masses, state.velocities)
    print(f"  total-energy drift over 100 fs at 2 fs/step: {e1 - e0:+.4f} kcal/mol")

    pdb = io.StringIO()
    write_pdb(pdb, topology, state.positions)
    xyz = io.StringIO()
    write_xyz(xyz, topology, state.positions, comment="equilibrated water box")
    print(f"\n  PDB snapshot: {len(pdb.getvalue().splitlines())} lines "
          f"(write to disk with write_pdb('out.pdb', ...))")
    print(f"  XYZ snapshot: {len(xyz.getvalue().splitlines())} lines")
    print("Done.")


if __name__ == "__main__":
    main()
