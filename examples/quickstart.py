#!/usr/bin/env python
"""Quickstart: build a solvated peptide, evaluate energies, run MD.

Exercises the serial MD engine end to end:

1. build a 4-residue alpha-helical peptide in a shell of waters;
2. evaluate the potential energy with PME electrostatics and show the
   classic/PME split the paper characterizes;
3. run 100 fs of NVE dynamics and watch total-energy conservation.

Run:  python examples/quickstart.py
"""

from repro.md import (
    CutoffScheme,
    MDSystem,
    VelocityVerlet,
    default_forcefield,
    kinetic_energy,
)
from repro import build_peptide_in_water


def main() -> None:
    print("Building a 4-residue peptide with 30 waters...")
    topology, positions, box = build_peptide_in_water(n_residues=4, n_waters=30)
    print(f"  atoms: {topology.n_atoms}, box: {box.lengths} A")

    system = MDSystem(
        topology,
        default_forcefield(),
        box,
        CutoffScheme(r_cut=8.0, skin=1.5),
        electrostatics="pme",
        pme_grid=(24, 24, 24),
    )
    print(f"  Ewald alpha: {system.ewald_alpha:.4f} 1/A")

    breakdown, forces = system.energy_forces(positions)
    print("\nPotential energy (kcal/mol):")
    for name, value in breakdown.as_dict().items():
        print(f"  {name:16s} {value:12.3f}")
    print(f"  {'classic total':16s} {breakdown.classic_total:12.3f}")
    print(f"  {'PME total':16s} {breakdown.pme_total:12.3f}")
    print(f"  {'grand total':16s} {breakdown.total:12.3f}")
    print(f"  max |force|: {abs(forces).max():.2f} kcal/mol/A")

    print("\nRunning 200 x 0.5 fs of NVE dynamics at 200 K...")
    integrator = VelocityVerlet(system, dt=0.0005)
    state = integrator.initialize(positions, temperature=200.0, seed=42)
    e0 = state.potential.total + kinetic_energy(system.masses, state.velocities)
    for block in range(4):
        state = integrator.run(state, 50)
        e = state.potential.total + kinetic_energy(system.masses, state.velocities)
        print(
            f"  step {state.step:4d}: PE = {state.potential.total:10.3f}  "
            f"total = {e:10.3f}  drift = {e - e0:+8.4f} kcal/mol"
        )
    print("Done.")


if __name__ == "__main__":
    main()
