#!/usr/bin/env python
"""Network comparison: TCP/IP vs SCore vs Myrinet (Figures 5-7).

Same workload, same MPI calls — only the interconnect and its driver
software change.  Shows the paper's central finding: the software
infrastructure matters more than the raw wire.

Run:  python examples/network_comparison.py        (~2 minutes)
"""

from repro.experiments import default_runner, figure5, figure7


def main() -> None:
    runner = default_runner(n_steps=10)

    print("Simulating the three interconnects at p = 1, 2, 4, 8...\n")
    fig5 = figure5(runner)
    print(fig5.report)

    print()
    fig7 = figure7(runner)
    print(fig7.report)

    tcp8 = fig5.series["tcp-gige"][3]
    score8 = fig5.series["score-gige"][3]
    myri8 = fig5.series["myrinet"][3]
    print(
        f"\nAt 8 processors: SCore is {tcp8 / score8:.1f}x faster than TCP/IP on the"
        f"\nSAME Gigabit Ethernet wire; Myrinet adds another {score8 / myri8:.2f}x on top."
        "\nBetter communication software buys most of the win at no hardware cost."
    )


if __name__ == "__main__":
    main()
