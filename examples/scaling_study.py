#!/usr/bin/env python
"""Scaling study: the paper's reference case (Figures 3 and 4).

Runs the 3552-atom myoglobin benchmark for 10 MD steps on the simulated
reference platform — MPICH over TCP/IP on Gigabit Ethernet, uni-processor
nodes — at 1, 2, 4 and 8 processors, and prints the wall-clock series and
the computation/communication/synchronization breakdowns.

Run:  python examples/scaling_study.py        (~1 minute)
"""

from repro.core import breakdown_table, time_series_table
from repro.experiments import default_runner, figure3, figure4


def main() -> None:
    print("Building the 3552-atom benchmark system (myoglobin + CO + SO4 + 337 waters)...")
    runner = default_runner(n_steps=10)

    print("Simulating the reference platform at p = 1, 2, 4, 8...\n")
    fig3 = figure3(runner)
    print(fig3.report)

    speedups = [fig3.series["total"][0] / t for t in fig3.series["total"]]
    print("\nSpeedups:", "  ".join(f"p={p}: {s:.2f}x" for p, s in zip(fig3.series["p"], speedups)))

    fig4 = figure4(runner)
    print()
    print(fig4.report)

    print(
        "\nReading: the classic (cutoff) part still scales at p=2 (<10% overhead)\n"
        "but the PME part is already communication-bound — exactly the paper's\n"
        "answer to 'is there any easy parallelism in CHARMM?': some, but not in PME."
    )


if __name__ == "__main__":
    main()
