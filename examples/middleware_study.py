#!/usr/bin/env python
"""Middleware study: raw MPI vs CHARMM's CMPI layer (Figure 8).

The same physics, the same network — only the communication style
changes: standard MPI collectives versus CMPI's split non-blocking calls
with neighbour-ring synchronization (p-1 one-byte rounds).

Run:  python examples/middleware_study.py        (~2 minutes)
"""

from repro.experiments import default_runner, figure8


def main() -> None:
    runner = default_runner(n_steps=10)

    print("Simulating MPI vs CMPI middleware on TCP/IP (uni-processor)...\n")
    fig8 = figure8(runner)
    print(fig8.report)

    mpi = fig8.series["mpi"]
    cmpi = fig8.series["cmpi"]
    print(
        f"\nAt p=8: MPI total {mpi['total'][3]:.2f} s vs CMPI {cmpi['total'][3]:.2f} s;"
        f"\nCMPI synchronization alone costs {cmpi['sync'][3]:.2f} s (MPI: {mpi['sync'][3]:.2f} s)."
        "\nPortable-looking middleware can silently forfeit all scalability on"
        "\nper-packet-overhead networks — the paper's warning in Sec. 4.2."
    )


if __name__ == "__main__":
    main()
